// Command-line simulation driver: run any workload under any policy and
// print a full report. This is the "do one experiment by hand" tool the
// bench_* binaries are built from.
//
//   simulate [options]
//     --workload  AES|BS|FIR|GD|KM|MT|SC     (default MT)
//     --policy    none|fpc|bdi|cpack|adaptive (default adaptive)
//     --lambda    <float>                     (default 6)
//     --scale     <float>                     (default 1.0)
//     --gpus      <int>                       (default 4)
//     --bus       <bytes/cycle>               (default 20)
//     --samples   <sampling transfers>        (default 7)
//     --running   <running transfers>         (default 300)
//     --tier      chip|die|package|node       (default die)
//     --ber       <bit error rate>            (default 0; enables reliability layer)
//     --drop      <message drop rate>         (default 0)
//     --fabric    bus|switch                  (default bus)
//     --topology  bus|switch|hier|hier-fattree|hier-torus
//                                              (pins the fabric; overrides
//                                               --fabric and MGCOMP_TOPOLOGY)
//     --gpus-per-node <int>                    (hier node grouping, default 4;
//                                               must divide --gpus)
//     --internode-bw-ratio <int>               (trunk oversubscription,
//                                               default 4)
//     --fault-episodes SPEC                   (fail-stop schedule, e.g.
//                                              "down:0-1@5000+20000;gpufail:2@80000";
//                                              see parse_fault_episodes)
//     --characterize                          (adds Table V-style columns)
//     --trace-out <file.json>                 (write Chrome trace-event JSON; open in Perfetto)
//     --trace-limit <events>                  (trace ring capacity, default 262144)
//     --simd      scalar|sse42|avx2|neon      (pin codec kernel backend; default best)
//     --shards    <lanes>                     (sharded event engine, 1..64;
//                                              default 1 or $MGCOMP_SHARDS)
//
//   Collective mode (replaces the workload with one ring collective):
//     --collective allreduce|allgather|reducescatter|broadcast
//     --coll-kb    <KB per rank>              (default 64)
//     --coll-fill  zero|lowrange|ramp|random  (default lowrange)
//     --coll-op    sum|max                    (default sum)
//     --coll-window <in-flight lines per hop> (default 16)
//     --coll-lines-per-block <lines>          (bulk pulls: lines per ring-hop
//                                              request, 1..64; default 1 = per-line)
//     --coll-root  <rank>                     (broadcast source, default 0)
//     --coll-algo  auto|flat|hier             (schedule family; auto picks
//                                              hier on hierarchical fabrics)
//     --coll-trunk-lines-per-block <lines>    (hier trunk-phase block size,
//                                              1..64; default 64 = full page)
//     --allow-shrink                          (complete on survivors after a GPU fail-stop)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/report.h"
#include "collective/collective.h"
#include "compression/simd/dispatch.h"
#include "core/system.h"
#include "workloads/all_workloads.h"

namespace {

using namespace mgcomp;

struct Options {
  std::string workload{"MT"};
  std::string policy{"adaptive"};
  double lambda{6.0};
  double scale{1.0};
  std::uint32_t gpus{4};
  std::uint32_t bus{20};
  std::uint32_t samples{7};
  std::uint32_t running{300};
  std::string tier{"die"};
  double ber{0.0};   ///< link bit-error rate (reliability extension)
  double drop{0.0};  ///< link message-drop rate
  std::string fabric{"bus"};
  std::string topology;              ///< explicit fabric pin ("" = --fabric / env)
  std::uint32_t gpus_per_node{0};    ///< hier node grouping (0 = config default)
  std::uint32_t internode_bw_ratio{0};  ///< trunk oversubscription (0 = default)
  std::string fault_episodes;  ///< fail-stop episode spec ("" = none)
  bool allow_shrink{false};    ///< collective: shrink past dead ranks
  bool characterize{false};
  bool json{false};
  std::string dump_trace;  ///< CSV path for Fig.1-style per-transfer series
  std::string trace_out;   ///< Chrome trace-event JSON path (Perfetto)
  std::size_t trace_limit{262144};  ///< event-ring capacity for --trace-out
  std::string simd;        ///< pinned SIMD backend ("" = best available)
  std::uint32_t shards{0};  ///< event-engine lanes (0 = config default)
  std::string collective;  ///< collective mode: op name ("" = workload mode)
  std::uint32_t coll_kb{64};       ///< collective buffer KB per rank
  std::string coll_fill{"lowrange"};
  std::string coll_op{"sum"};
  std::uint32_t coll_window{16};
  std::uint32_t coll_lines_per_block{1};
  std::uint32_t coll_root{0};
  std::string coll_algo{"auto"};
  std::uint32_t coll_trunk_lpb{0};  ///< trunk-phase block size (0 = full page)
};

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--workload") {
      const char* v = next();
      if (v == nullptr) return false;
      o.workload = v;
    } else if (arg == "--policy") {
      const char* v = next();
      if (v == nullptr) return false;
      o.policy = v;
    } else if (arg == "--lambda") {
      const char* v = next();
      if (v == nullptr) return false;
      o.lambda = std::atof(v);
    } else if (arg == "--scale") {
      const char* v = next();
      if (v == nullptr) return false;
      o.scale = std::atof(v);
    } else if (arg == "--gpus") {
      const char* v = next();
      if (v == nullptr) return false;
      o.gpus = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--bus") {
      const char* v = next();
      if (v == nullptr) return false;
      o.bus = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--samples") {
      const char* v = next();
      if (v == nullptr) return false;
      o.samples = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--running") {
      const char* v = next();
      if (v == nullptr) return false;
      o.running = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--tier") {
      const char* v = next();
      if (v == nullptr) return false;
      o.tier = v;
    } else if (arg == "--ber") {
      const char* v = next();
      if (v == nullptr) return false;
      o.ber = std::atof(v);
    } else if (arg == "--drop") {
      const char* v = next();
      if (v == nullptr) return false;
      o.drop = std::atof(v);
    } else if (arg == "--fabric") {
      const char* v = next();
      if (v == nullptr) return false;
      o.fabric = v;
    } else if (arg == "--topology") {
      const char* v = next();
      if (v == nullptr) return false;
      o.topology = v;
    } else if (arg == "--gpus-per-node") {
      const char* v = next();
      if (v == nullptr) return false;
      o.gpus_per_node = static_cast<std::uint32_t>(std::atoi(v));
      if (o.gpus_per_node == 0) return false;
    } else if (arg == "--internode-bw-ratio") {
      const char* v = next();
      if (v == nullptr) return false;
      o.internode_bw_ratio = static_cast<std::uint32_t>(std::atoi(v));
      if (o.internode_bw_ratio == 0) return false;
    } else if (arg == "--fault-episodes") {
      const char* v = next();
      if (v == nullptr) return false;
      o.fault_episodes = v;
    } else if (arg == "--allow-shrink") {
      o.allow_shrink = true;
    } else if (arg == "--characterize") {
      o.characterize = true;
    } else if (arg == "--json") {
      o.json = true;
    } else if (arg == "--dump-trace") {
      const char* v = next();
      if (v == nullptr) return false;
      o.dump_trace = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (v == nullptr) return false;
      o.trace_out = v;
    } else if (arg == "--trace-limit") {
      const char* v = next();
      if (v == nullptr) return false;
      o.trace_limit = static_cast<std::size_t>(std::atoll(v));
      if (o.trace_limit == 0) return false;
    } else if (arg == "--simd") {
      const char* v = next();
      if (v == nullptr) return false;
      o.simd = v;
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return false;
      o.shards = static_cast<std::uint32_t>(std::atoi(v));
      if (o.shards < 1 || o.shards > Engine::kMaxShards) return false;
    } else if (arg == "--collective") {
      const char* v = next();
      if (v == nullptr) return false;
      o.collective = v;
    } else if (arg == "--coll-kb") {
      const char* v = next();
      if (v == nullptr) return false;
      o.coll_kb = static_cast<std::uint32_t>(std::atoi(v));
      if (o.coll_kb == 0) return false;
    } else if (arg == "--coll-fill") {
      const char* v = next();
      if (v == nullptr) return false;
      o.coll_fill = v;
    } else if (arg == "--coll-op") {
      const char* v = next();
      if (v == nullptr) return false;
      o.coll_op = v;
    } else if (arg == "--coll-window") {
      const char* v = next();
      if (v == nullptr) return false;
      o.coll_window = static_cast<std::uint32_t>(std::atoi(v));
      if (o.coll_window == 0) return false;
    } else if (arg == "--coll-lines-per-block") {
      const char* v = next();
      if (v == nullptr) return false;
      o.coll_lines_per_block = static_cast<std::uint32_t>(std::atoi(v));
      if (o.coll_lines_per_block == 0) return false;
    } else if (arg == "--coll-root") {
      const char* v = next();
      if (v == nullptr) return false;
      o.coll_root = static_cast<std::uint32_t>(std::atoi(v));
    } else if (arg == "--coll-algo") {
      const char* v = next();
      if (v == nullptr) return false;
      o.coll_algo = v;
    } else if (arg == "--coll-trunk-lines-per-block") {
      const char* v = next();
      if (v == nullptr) return false;
      o.coll_trunk_lpb = static_cast<std::uint32_t>(std::atoi(v));
      if (o.coll_trunk_lpb == 0) return false;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void usage() {
  std::puts(
      "usage: simulate [--workload AES|BS|FIR|GD|KM|MT|SC] "
      "[--policy none|fpc|bdi|cpack|adaptive]\n"
      "                [--lambda F] [--scale F] [--gpus N] [--bus B/cyc]\n"
      "                [--samples N] [--running N] [--tier chip|die|package|node]\n"
      "                [--ber RATE] [--drop RATE] [--fabric bus|switch]\n"
      "                [--topology bus|switch|hier|hier-fattree|hier-torus]\n"
      "                [--gpus-per-node N] [--internode-bw-ratio R]\n"
      "                [--fault-episodes SPEC] [--allow-shrink]\n"
      "                [--characterize] [--json] [--dump-trace out.csv]\n"
      "                [--trace-out out.json] [--trace-limit EVENTS]\n"
      "                [--simd scalar|sse42|avx2|neon] [--shards N]\n"
      "                [--collective allreduce|allgather|reducescatter|broadcast]\n"
      "                [--coll-kb KB] [--coll-fill zero|lowrange|ramp|random]\n"
      "                [--coll-op sum|max] [--coll-window LINES] [--coll-root RANK]\n"
      "                [--coll-lines-per-block LINES] [--coll-algo auto|flat|hier]\n"
      "                [--coll-trunk-lines-per-block LINES]\n"
      "  SPEC is ';'-separated clauses: down:A-B@START+DUR | flap:A-B@START+DURxCOUNT/PERIOD\n"
      "  | gpufail:G@START (ticks; A,B,G are GPU indices)");
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) {
    usage();
    return 2;
  }
  if (!o.simd.empty() && !simd::set_backend(o.simd)) {
    std::fprintf(stderr, "unknown or unavailable SIMD backend: %s\n", o.simd.c_str());
    return 2;
  }

  SystemConfig cfg;
  cfg.num_gpus = o.gpus;
  cfg.shards = o.shards;
  cfg.bus.bytes_per_cycle = o.bus;
  cfg.characterize = o.characterize;
  cfg.fault.bit_error_rate = o.ber;
  cfg.fault.drop_rate = o.drop;
  if (o.fabric == "switch") {
    cfg.fabric = FabricKind::kSwitch;
  } else if (o.fabric != "bus") {
    std::fprintf(stderr, "unknown fabric: %s\n", o.fabric.c_str());
    return 2;
  }
  // --topology pins the fabric explicitly (including "bus", which disables
  // the MGCOMP_TOPOLOGY sweep); it wins over the legacy --fabric alias.
  if (!o.topology.empty()) {
    FabricKind kind = FabricKind::kBus;
    HierGraph graph = cfg.hier.graph;
    if (!parse_topology(o.topology, &kind, &graph)) {
      std::fprintf(stderr, "unknown topology: %s\n", o.topology.c_str());
      return 2;
    }
    cfg.fabric = kind;
    cfg.hier.graph = graph;
  }
  if (o.gpus_per_node != 0) cfg.hier.gpus_per_node = o.gpus_per_node;
  if (o.internode_bw_ratio != 0) cfg.hier.internode_bw_ratio = o.internode_bw_ratio;
  if (!o.fault_episodes.empty()) {
    std::string err;
    if (!parse_fault_episodes(o.fault_episodes, &cfg.episodes, &err)) {
      std::fprintf(stderr, "bad --fault-episodes: %s\n", err.c_str());
      return 2;
    }
  }
  if (!o.dump_trace.empty()) cfg.trace_samples = 5000;
  if (!o.trace_out.empty()) cfg.trace_events = o.trace_limit;
  cfg.energy_tier = o.tier == "chip"      ? FabricTier::kOnChip
                    : o.tier == "package" ? FabricTier::kInterPackage
                    : o.tier == "node"    ? FabricTier::kInterNode
                                          : FabricTier::kInterDie;
  if (o.policy == "none") {
    cfg.policy = make_no_compression_policy();
  } else if (o.policy == "fpc") {
    cfg.policy = make_static_policy(CodecId::kFpc);
  } else if (o.policy == "bdi") {
    cfg.policy = make_static_policy(CodecId::kBdi);
  } else if (o.policy == "cpack") {
    cfg.policy = make_static_policy(CodecId::kCpackZ);
  } else if (o.policy == "adaptive") {
    cfg.policy = make_adaptive_policy(AdaptiveParams{
        .lambda = o.lambda, .sample_transfers = o.samples, .running_transfers = o.running});
  } else {
    usage();
    return 2;
  }

  if (!o.collective.empty()) {
    CollectiveConfig ccfg;
    if (!parse_collective_kind(o.collective, &ccfg.kind)) {
      std::fprintf(stderr, "unknown collective: %s\n", o.collective.c_str());
      return 2;
    }
    if (!parse_collective_fill(o.coll_fill, &ccfg.fill)) {
      std::fprintf(stderr, "unknown collective fill: %s\n", o.coll_fill.c_str());
      return 2;
    }
    if (o.coll_op == "sum") {
      ccfg.op = ReduceOp::kSum;
    } else if (o.coll_op == "max") {
      ccfg.op = ReduceOp::kMax;
    } else {
      std::fprintf(stderr, "unknown reduce op: %s\n", o.coll_op.c_str());
      return 2;
    }
    ccfg.lines_per_rank = static_cast<std::size_t>(o.coll_kb) * 1024 / kLineBytes;
    ccfg.window = o.coll_window;
    ccfg.lines_per_block = o.coll_lines_per_block;
    ccfg.root = o.coll_root;
    ccfg.allow_shrink = o.allow_shrink;
    if (!parse_collective_algo(o.coll_algo, &ccfg.algo)) {
      std::fprintf(stderr, "unknown collective algo: %s\n", o.coll_algo.c_str());
      return 2;
    }
    ccfg.trunk_lines_per_block = o.coll_trunk_lpb;

    MultiGpuSystem sys(std::move(cfg));
    const CollectiveOutcome out = run_collective(sys, ccfg);
    const RunResult& r = out.run;
    const CollectiveStats& st = r.collective;
    if (out.status != CollectiveStatus::kFailed && !out.verified) {
      std::fprintf(stderr, "collective verification FAILED\n");
      return 1;
    }
    std::string survivors;
    for (const std::uint32_t s : out.surviving_ranks) {
      if (!survivors.empty()) survivors += ",";
      survivors += std::to_string(s);
    }
    char digest[20];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(out.data_digest));
    char fp[20];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(collective_fingerprint(out)));
    if (o.json) {
      JsonObject j;
      j.field("collective", st.op)
          .field("policy", o.policy)
          .field("algo", st.algo)
          .field("nodes", static_cast<std::uint64_t>(st.nodes))
          .field("trunk_lines_per_block",
                 static_cast<std::uint64_t>(st.trunk_lines_per_block))
          .field("trunk_messages", r.bus.trunk_messages)
          .field("trunk_wire_bytes", r.bus.trunk_wire_bytes)
          .field("ranks", static_cast<std::uint64_t>(st.ranks))
          .field("bytes_per_rank", st.bytes_per_rank)
          .field("verified", static_cast<std::uint64_t>(out.verified ? 1 : 0))
          .field("data_digest", std::string(digest))
          .field("fingerprint", std::string(fp))
          .field("steps", st.steps)
          .field("line_transfers", st.line_transfers)
          .field("reduced_lines", st.reduced_lines)
          .field("payload_bytes", st.payload_bytes)
          .field("duration_cycles", static_cast<std::uint64_t>(st.duration))
          .field("bus_factor", st.bus_factor)
          .field("alg_bytes_per_cycle", st.alg_bytes_per_cycle())
          .field("bus_bytes_per_cycle", st.bus_bytes_per_cycle())
          .field("bus_busy_cycles", static_cast<std::uint64_t>(r.bus.busy_cycles))
          .field("inter_gpu_traffic_bytes", r.inter_gpu_traffic_bytes())
          .field("payload_raw_bits", r.bus.inter_gpu_payload_raw_bits)
          .field("payload_wire_bits", r.bus.inter_gpu_payload_wire_bits)
          .field("fabric_energy_pj", r.fabric_energy_pj)
          .field("crc_failures", r.link.crc_failures)
          .field("retransmissions", r.link.retransmissions())
          .field("hard_failures", r.link.hard_failures)
          .field("link_errors_dropped", r.link_errors_dropped)
          .field("status", std::string(to_string(out.status)))
          .field("error_kind", std::string(to_string(out.error.kind)))
          .field("attempts", static_cast<std::uint64_t>(out.attempts))
          .field("partial", static_cast<std::uint64_t>(out.partial ? 1 : 0))
          .field("surviving_ranks", survivors)
          .field("health_transitions", r.health.transitions())
          .field("health_link_down", r.health.link_down)
          .field("health_link_recovered", r.health.link_recovered)
          .field("health_gpu_down", r.health.gpu_down)
          .field("health_probes_sent", r.health.probes_sent);
      std::printf("%s\n", j.to_string().c_str());
    } else {
      std::printf("%s, %u ranks, %llu KB/rank, policy %s, fill %s, algo %s: %s\n",
                  st.op.c_str(), st.ranks,
                  static_cast<unsigned long long>(st.bytes_per_rank / 1024),
                  o.policy.c_str(), o.coll_fill.c_str(), st.algo.c_str(),
                  std::string(to_string(out.status)).c_str());
      if (r.bus.trunk_messages > 0) {
        std::printf("  trunk traffic         %12llu bytes in %llu messages "
                    "(%llu busy cycles)\n",
                    static_cast<unsigned long long>(r.bus.trunk_wire_bytes),
                    static_cast<unsigned long long>(r.bus.trunk_messages),
                    static_cast<unsigned long long>(r.bus.trunk_busy_cycles));
      }
      if (out.status != CollectiveStatus::kCompleted) {
        std::printf("  recovery              attempts %u, error %s "
                    "(rank %u <- peer %u, step %llu, tick %llu)%s\n",
                    out.attempts, std::string(to_string(out.error.kind)).c_str(),
                    out.error.rank, out.error.peer,
                    static_cast<unsigned long long>(out.error.step),
                    static_cast<unsigned long long>(out.error.tick),
                    out.partial ? ", partial result" : "");
        std::printf("  survivors             %s\n", survivors.c_str());
        std::printf("  health                %llu transitions (link down %llu, recovered "
                    "%llu, gpu down %llu), %llu probes\n",
                    static_cast<unsigned long long>(r.health.transitions()),
                    static_cast<unsigned long long>(r.health.link_down),
                    static_cast<unsigned long long>(r.health.link_recovered),
                    static_cast<unsigned long long>(r.health.gpu_down),
                    static_cast<unsigned long long>(r.health.probes_sent));
      }
      std::printf("  duration              %12llu cycles\n",
                  static_cast<unsigned long long>(st.duration));
      std::printf("  steps / line reads    %12llu / %llu (%llu reduced)\n",
                  static_cast<unsigned long long>(st.steps),
                  static_cast<unsigned long long>(st.line_transfers),
                  static_cast<unsigned long long>(st.reduced_lines));
      std::printf("  alg / bus bandwidth   %12.3f / %.3f B/cycle (factor %.3f)\n",
                  st.alg_bytes_per_cycle(), st.bus_bytes_per_cycle(), st.bus_factor);
      std::printf("  bus busy              %12llu cycles\n",
                  static_cast<unsigned long long>(r.bus.busy_cycles));
      std::printf("  payload raw -> wire   %12llu -> %llu bits (%.2fx)\n",
                  static_cast<unsigned long long>(r.bus.inter_gpu_payload_raw_bits),
                  static_cast<unsigned long long>(r.bus.inter_gpu_payload_wire_bits),
                  r.bus.inter_gpu_payload_wire_bits > 0
                      ? static_cast<double>(r.bus.inter_gpu_payload_raw_bits) /
                            static_cast<double>(r.bus.inter_gpu_payload_wire_bits)
                      : 1.0);
      if (r.link.crc_failures + r.link.retransmissions() > 0) {
        std::printf("  crc fail / retrans    %12llu / %llu (hard failures %llu)\n",
                    static_cast<unsigned long long>(r.link.crc_failures),
                    static_cast<unsigned long long>(r.link.retransmissions()),
                    static_cast<unsigned long long>(r.link.hard_failures));
      }
      std::printf("  digest %s  fingerprint %s\n", digest, fp);
    }
    return out.status == CollectiveStatus::kFailed ? 1 : 0;
  }

  auto wl = make_workload(o.workload, o.scale);
  if (wl == nullptr) {
    std::fprintf(stderr, "unknown workload: %s\n", o.workload.c_str());
    return 2;
  }

  if (!o.json) {
    std::printf("%s (%s), policy %s, %u GPUs, %u B/cycle, scale %.2f\n",
                std::string(wl->name()).c_str(), std::string(wl->abbrev()).c_str(),
                o.policy.c_str(), o.gpus, o.bus, o.scale);
  }

  const RunResult r = run_workload(std::move(cfg), *wl);

  if (!o.trace_out.empty()) {
    if (std::FILE* f = std::fopen(o.trace_out.c_str(), "w")) {
      std::fwrite(r.trace_json.data(), 1, r.trace_json.size(), f);
      std::fclose(f);
      if (!o.json) {
        std::printf("wrote %llu trace events (%llu evicted) to %s\n",
                    static_cast<unsigned long long>(r.trace_events_recorded -
                                                    r.trace_events_dropped),
                    static_cast<unsigned long long>(r.trace_events_dropped),
                    o.trace_out.c_str());
      }
    } else {
      std::fprintf(stderr, "cannot write %s\n", o.trace_out.c_str());
      return 1;
    }
  }

  if (o.json) {
    JsonObject out;
    out.field("workload", o.workload)
        .field("policy", o.policy)
        .field("scale", o.scale)
        .field("gpus", static_cast<std::uint64_t>(o.gpus))
        .field("exec_cycles", static_cast<std::uint64_t>(r.exec_ticks))
        .field("bus_busy_cycles", static_cast<std::uint64_t>(r.bus.busy_cycles))
        .field("remote_reads", r.remote_reads())
        .field("remote_writes", r.remote_writes())
        .field("inter_gpu_traffic_bytes", r.inter_gpu_traffic_bytes())
        .field("inter_gpu_offered_traffic_bytes", r.bus.inter_gpu_offered_wire_bytes)
        .field("payload_raw_bits", r.bus.inter_gpu_payload_raw_bits)
        .field("payload_wire_bits", r.bus.inter_gpu_payload_wire_bits)
        .field("offered_payload_raw_bits", r.bus.inter_gpu_offered_payload_raw_bits)
        .field("offered_payload_wire_bits", r.bus.inter_gpu_offered_payload_wire_bits)
        .field("fabric_energy_pj", r.fabric_energy_pj)
        .field("compressor_energy_pj", r.compressor_energy_pj)
        .field("decompressor_energy_pj", r.decompressor_energy_pj)
        .field("l1v_hit_rate", r.l1v.hit_rate())
        .field("l2_hit_rate", r.l2.hit_rate())
        .field("crc_failures", r.link.crc_failures)
        .field("retransmissions", r.link.retransmissions())
        .field("duplicates_suppressed", r.link.duplicates_suppressed)
        .field("hard_failures", r.link.hard_failures)
        .field("link_errors_dropped", r.link_errors_dropped)
        .field("health_transitions", r.health.transitions())
        .field("health_link_down", r.health.link_down)
        .field("health_link_recovered", r.health.link_recovered)
        .field("health_gpu_down", r.health.gpu_down)
        .field("health_probes_sent", r.health.probes_sent)
        .field("degrade_events", r.policy_stats.degrade_events)
        .field("goodput_fraction", r.goodput_fraction())
        .field("raw_throughput_bytes_per_cycle", r.raw_throughput_bytes_per_cycle())
        .field("remote_read_latency_count", r.remote_read_latency.count())
        .field("remote_read_latency_p50", r.remote_read_latency.percentile(0.50))
        .field("remote_read_latency_p95", r.remote_read_latency.percentile(0.95))
        .field("remote_read_latency_p99", r.remote_read_latency.percentile(0.99))
        .field("remote_read_latency_max",
               static_cast<std::uint64_t>(r.remote_read_latency.max()))
        .field("remote_write_latency_count", r.remote_write_latency.count())
        .field("remote_write_latency_p50", r.remote_write_latency.percentile(0.50))
        .field("remote_write_latency_p95", r.remote_write_latency.percentile(0.95))
        .field("remote_write_latency_p99", r.remote_write_latency.percentile(0.99))
        .field("remote_write_latency_max",
               static_cast<std::uint64_t>(r.remote_write_latency.max()))
        .field("bulk_read_latency_count", r.bulk_read_latency.count())
        .field("bulk_read_latency_p50", r.bulk_read_latency.percentile(0.50))
        .field("bulk_read_latency_p95", r.bulk_read_latency.percentile(0.95))
        .field("bulk_read_latency_p99", r.bulk_read_latency.percentile(0.99))
        .field("bulk_read_latency_max",
               static_cast<std::uint64_t>(r.bulk_read_latency.max()))
        .field("bulk_write_latency_count", r.bulk_write_latency.count())
        .field("bulk_write_latency_p50", r.bulk_write_latency.percentile(0.50))
        .field("bulk_write_latency_p95", r.bulk_write_latency.percentile(0.95))
        .field("bulk_write_latency_p99", r.bulk_write_latency.percentile(0.99))
        .field("bulk_write_latency_max",
               static_cast<std::uint64_t>(r.bulk_write_latency.max()))
        .field("bulk_payloads", r.bulk_payloads)
        .field("bulk_raw_bytes", r.bulk_raw_bytes)
        .field("bulk_wire_payload_bytes", r.bulk_wire_payload_bytes)
        .field("pool_hits", r.pool_hits)
        .field("pool_misses", r.pool_misses)
        .field("bulk_pool_misses", r.bulk_pool_misses);
    if (!o.trace_out.empty()) {
      out.field("trace_events_recorded", r.trace_events_recorded)
          .field("trace_events_dropped", r.trace_events_dropped);
    }
    std::printf("%s\n", out.to_string().c_str());
    return 0;
  }

  std::printf("\nexecution time        %12llu cycles (%.3f ms @ 1 GHz)\n",
              static_cast<unsigned long long>(r.exec_ticks),
              static_cast<double>(r.exec_ticks) / 1e6);
  std::printf("bus busy              %12llu cycles (%.1f%% utilization)\n",
              static_cast<unsigned long long>(r.bus.busy_cycles),
              100.0 * static_cast<double>(r.bus.busy_cycles) /
                  static_cast<double>(r.exec_ticks));
  std::printf("remote reads/writes   %12llu / %llu\n",
              static_cast<unsigned long long>(r.remote_reads()),
              static_cast<unsigned long long>(r.remote_writes()));
  std::printf("inter-GPU traffic     %12llu bytes\n",
              static_cast<unsigned long long>(r.inter_gpu_traffic_bytes()));
  std::printf("payload raw -> wire   %12llu -> %llu bits (%.2fx)\n",
              static_cast<unsigned long long>(r.bus.inter_gpu_payload_raw_bits),
              static_cast<unsigned long long>(r.bus.inter_gpu_payload_wire_bits),
              r.bus.inter_gpu_payload_wire_bits > 0
                  ? static_cast<double>(r.bus.inter_gpu_payload_raw_bits) /
                        static_cast<double>(r.bus.inter_gpu_payload_wire_bits)
                  : 1.0);
  std::printf("link energy           %15.2f uJ (fabric %.2f + comp %.2f + decomp %.2f)\n",
              r.total_link_energy_pj() / 1e6, r.fabric_energy_pj / 1e6,
              r.compressor_energy_pj / 1e6, r.decompressor_energy_pj / 1e6);
  std::printf("caches (hit rates)    L1V %.1f%%  L1S %.1f%%  L2 %.1f%%\n",
              100.0 * r.l1v.hit_rate(), 100.0 * r.l1s.hit_rate(), 100.0 * r.l2.hit_rate());
  if (r.remote_read_latency.count() > 0) {
    std::printf("remote read latency   p50 %.0f  p95 %.0f  p99 %.0f  max %llu cycles\n",
                r.remote_read_latency.percentile(0.50),
                r.remote_read_latency.percentile(0.95),
                r.remote_read_latency.percentile(0.99),
                static_cast<unsigned long long>(r.remote_read_latency.max()));
  }
  if (r.remote_write_latency.count() > 0) {
    std::printf("remote write latency  p50 %.0f  p95 %.0f  p99 %.0f  max %llu cycles\n",
                r.remote_write_latency.percentile(0.50),
                r.remote_write_latency.percentile(0.95),
                r.remote_write_latency.percentile(0.99),
                static_cast<unsigned long long>(r.remote_write_latency.max()));
  }
  if (r.bulk_read_latency.count() > 0) {
    std::printf("bulk read latency     p50 %.0f  p95 %.0f  p99 %.0f  max %llu cycles\n",
                r.bulk_read_latency.percentile(0.50), r.bulk_read_latency.percentile(0.95),
                r.bulk_read_latency.percentile(0.99),
                static_cast<unsigned long long>(r.bulk_read_latency.max()));
  }
  if (r.bulk_write_latency.count() > 0) {
    std::printf("bulk write latency    p50 %.0f  p95 %.0f  p99 %.0f  max %llu cycles\n",
                r.bulk_write_latency.percentile(0.50),
                r.bulk_write_latency.percentile(0.95),
                r.bulk_write_latency.percentile(0.99),
                static_cast<unsigned long long>(r.bulk_write_latency.max()));
  }
  if (r.bulk_payloads > 0) {
    std::printf("bulk payloads         %12llu (%llu -> %llu bytes on the wire, "
                "pool misses %llu)\n",
                static_cast<unsigned long long>(r.bulk_payloads),
                static_cast<unsigned long long>(r.bulk_raw_bytes),
                static_cast<unsigned long long>(r.bulk_wire_payload_bytes),
                static_cast<unsigned long long>(r.bulk_pool_misses));
  }

  std::printf("\nwire payloads by codec:\n");
  for (const CodecId id :
       {CodecId::kNone, CodecId::kFpc, CodecId::kBdi, CodecId::kCpackZ}) {
    const auto i = static_cast<std::size_t>(id);
    if (r.policy_stats.wire_counts[i] == 0) continue;
    std::printf("  %-10s %12llu\n", std::string(codec_name(id)).c_str(),
                static_cast<unsigned long long>(r.policy_stats.wire_counts[i]));
  }
  if (r.policy_stats.votes_taken > 0) {
    std::printf("adaptive votes: %llu (wins:",
                static_cast<unsigned long long>(r.policy_stats.votes_taken));
    for (const CodecId id :
         {CodecId::kNone, CodecId::kFpc, CodecId::kBdi, CodecId::kCpackZ}) {
      const auto i = static_cast<std::size_t>(id);
      if (r.policy_stats.vote_wins[i] > 0) {
        std::printf(" %s=%llu", std::string(codec_name(id)).c_str(),
                    static_cast<unsigned long long>(r.policy_stats.vote_wins[i]));
      }
    }
    std::printf(")\n");
  }

  if (r.link.crc_failures + r.link.retransmissions() + r.faults.total_faults() > 0) {
    std::printf("\nlink reliability:\n");
    std::printf("  injected faults       %llu (bit errors %llu, drops %llu, dups %llu, "
                "delays %llu)\n",
                static_cast<unsigned long long>(r.faults.total_faults()),
                static_cast<unsigned long long>(r.faults.bit_errors),
                static_cast<unsigned long long>(r.faults.drops),
                static_cast<unsigned long long>(r.faults.duplicates),
                static_cast<unsigned long long>(r.faults.delays));
    std::printf("  crc failures / NACKs  %llu / %llu sent, %llu received\n",
                static_cast<unsigned long long>(r.link.crc_failures),
                static_cast<unsigned long long>(r.link.nacks_sent),
                static_cast<unsigned long long>(r.link.nacks_received));
    std::printf("  retransmissions       %llu (fast %llu, timeout %llu, replay %llu)\n",
                static_cast<unsigned long long>(r.link.retransmissions()),
                static_cast<unsigned long long>(r.link.fast_retransmits),
                static_cast<unsigned long long>(r.link.timeout_retransmits),
                static_cast<unsigned long long>(r.link.replay_hits));
    std::printf("  dups suppressed       %llu, hard failures %llu, backoff %llu cycles\n",
                static_cast<unsigned long long>(r.link.duplicates_suppressed),
                static_cast<unsigned long long>(r.link.hard_failures),
                static_cast<unsigned long long>(r.link.backoff_cycles));
    std::printf("  policy degrades       %llu events, %llu raw transfers\n",
                static_cast<unsigned long long>(r.policy_stats.degrade_events),
                static_cast<unsigned long long>(r.policy_stats.degraded_transfers));
    std::printf("  goodput               %.4f of %0.3f raw B/cycle\n",
                r.goodput_fraction(), r.raw_throughput_bytes_per_cycle());
    for (const LinkError& e : r.link_errors) {
      std::printf("  LINK ERROR: gpu%u %s addr=0x%llx after %u retries\n", e.gpu.value,
                  std::string(msg_type_name(e.op)).c_str(),
                  static_cast<unsigned long long>(e.addr), e.retries);
    }
    if (r.link_errors_dropped > 0) {
      std::printf("  (+%llu link errors dropped beyond the record cap)\n",
                  static_cast<unsigned long long>(r.link_errors_dropped));
    }
    if (r.health.transitions() > 0) {
      std::printf("  health transitions    %llu (link down %llu, recovered %llu, "
                  "gpu down %llu), %llu probes\n",
                  static_cast<unsigned long long>(r.health.transitions()),
                  static_cast<unsigned long long>(r.health.link_down),
                  static_cast<unsigned long long>(r.health.link_recovered),
                  static_cast<unsigned long long>(r.health.gpu_down),
                  static_cast<unsigned long long>(r.health.probes_sent));
    }
  }

  if (r.bus.endpoints > 0) {
    std::printf("\ntraffic matrix (wire KB, src row -> dst col; endpoint 0 = CPU):\n");
    std::printf("      ");
    for (std::size_t d = 0; d < r.bus.endpoints; ++d) std::printf("%8zu", d);
    std::printf("\n");
    for (std::size_t s = 0; s < r.bus.endpoints; ++s) {
      std::printf("  %3zu ", s);
      for (std::size_t d = 0; d < r.bus.endpoints; ++d) {
        std::printf("%8.0f", static_cast<double>(r.bus.pair_bytes(s, d)) / 1024.0);
      }
      std::printf("\n");
    }
  }

  {
    // Fabric utilization timeline (one char per 8192-cycle bucket,
    // downsampled to <= 100 chars).
    const auto& hist = r.bus.busy_by_bucket;
    if (!hist.empty()) {
      const char* levels = " .:-=+*#";
      const std::size_t group = hist.size() > 100 ? (hist.size() + 99) / 100 : 1;
      std::string line;
      for (std::size_t b = 0; b < hist.size(); b += group) {
        double acc = 0.0;
        std::size_t n = 0;
        for (std::size_t i = b; i < std::min(b + group, hist.size()); ++i, ++n) {
          acc += r.bus.utilization(i);
        }
        const int idx = std::min(7, static_cast<int>(acc / static_cast<double>(n) * 8.0));
        line += levels[idx];
      }
      std::printf("\nfabric utilization timeline:\n  |%s|\n", line.c_str());
    }
  }

  if (!o.dump_trace.empty()) {
    CsvWriter csv({"sample", "entropy", "fpc_bits", "bdi_bits", "cpack_bits"});
    for (std::size_t i = 0; i < r.trace.size(); ++i) {
      const TraceSample& s = r.trace[i];
      csv.add_row({std::to_string(i), fmt(s.entropy, 4),
                   std::to_string(s.size_bits[static_cast<std::size_t>(CodecId::kFpc)]),
                   std::to_string(s.size_bits[static_cast<std::size_t>(CodecId::kBdi)]),
                   std::to_string(s.size_bits[static_cast<std::size_t>(CodecId::kCpackZ)])});
    }
    if (std::FILE* f = std::fopen(o.dump_trace.c_str(), "w")) {
      std::fwrite(csv.str().data(), 1, csv.str().size(), f);
      std::fclose(f);
      if (!o.json) {
        std::printf("\nwrote %zu trace samples to %s\n", r.trace.size(),
                    o.dump_trace.c_str());
      }
    } else {
      std::fprintf(stderr, "cannot write %s\n", o.dump_trace.c_str());
    }
  }

  if (o.characterize) {
    std::printf("\ncharacterization (all payloads recompressed offline):\n");
    std::printf("  entropy %.2f | ratios: BDI %.2f  FPC %.2f  C-Pack+Z %.2f\n",
                r.characterization.entropy.normalized(),
                r.characterization.ratio(CodecId::kBdi),
                r.characterization.ratio(CodecId::kFpc),
                r.characterization.ratio(CodecId::kCpackZ));
  }
  return 0;
}
