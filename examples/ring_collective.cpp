// Example: ring all-reduce on an 8-GPU system, raw vs. adaptive link
// compression.
//
// Unlike training_allreduce (which emulates the all-reduce inside a
// workload's memory traffic), this drives the real collective layer: a
// chunked ring all-reduce whose every hop is a cache-line RDMA pull
// through the compression/CRC/fault path. The low-range integer fill
// stands in for narrow-range gradients, where BDI-style codecs shine —
// watch the wire bits and fabric busy cycles drop under the adaptive
// policy while the result stays bit-identical.
#include <cstdio>

#include "collective/collective.h"
#include "core/system.h"

int main(int argc, char** argv) {
  using namespace mgcomp;
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;

  CollectiveConfig ccfg;
  ccfg.kind = CollectiveKind::kAllReduce;
  ccfg.lines_per_rank = static_cast<std::size_t>(1024 * (scale > 0 ? scale : 1.0));
  if (ccfg.lines_per_rank < 64) ccfg.lines_per_rank = 64;
  ccfg.fill = CollectiveFill::kLowRange;

  auto run_with = [&](PolicyFactory policy) {
    SystemConfig cfg;
    cfg.num_gpus = 8;
    cfg.policy = std::move(policy);
    MultiGpuSystem sys(std::move(cfg));
    return run_collective(sys, ccfg);
  };

  std::printf("ring all-reduce: 8 ranks, %zu KB per rank, low-range u32 sum\n\n",
              ccfg.lines_per_rank * kLineBytes / 1024);

  const CollectiveOutcome raw = run_with(make_no_compression_policy());
  const CollectiveOutcome ad = run_with(make_adaptive_policy(AdaptiveParams{.lambda = 6.0}));

  MGCOMP_CHECK_MSG(raw.verified && ad.verified, "collective verification failed");
  MGCOMP_CHECK_MSG(raw.data_digest == ad.data_digest,
                   "compression must not change the reduced data");

  std::printf("%-24s %16s %16s\n", "", "no compression", "adaptive l=6");
  std::printf("%-24s %16llu %16llu\n", "duration (cycles)",
              static_cast<unsigned long long>(raw.run.collective.duration),
              static_cast<unsigned long long>(ad.run.collective.duration));
  std::printf("%-24s %16llu %16llu\n", "fabric busy (cycles)",
              static_cast<unsigned long long>(raw.run.bus.busy_cycles),
              static_cast<unsigned long long>(ad.run.bus.busy_cycles));
  std::printf("%-24s %16llu %16llu\n", "payload wire bits",
              static_cast<unsigned long long>(raw.run.bus.inter_gpu_payload_wire_bits),
              static_cast<unsigned long long>(ad.run.bus.inter_gpu_payload_wire_bits));
  std::printf("%-24s %16.3f %16.3f\n", "alg bandwidth (B/cyc)",
              raw.run.collective.alg_bytes_per_cycle(),
              ad.run.collective.alg_bytes_per_cycle());
  std::printf("%-24s %16.3f %16.3f\n", "bus bandwidth (B/cyc)",
              raw.run.collective.bus_bytes_per_cycle(),
              ad.run.collective.bus_bytes_per_cycle());
  std::printf("\nresult digest %016llx on both runs — compression changed the wire, not "
              "the math.\n", static_cast<unsigned long long>(raw.data_digest));
  return 0;
}
