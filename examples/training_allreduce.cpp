// Example: distributed training step with gradient all-reduce.
//
// The Gradient Descent workload shards mini-batches over the 4 GPUs; every
// iteration ends with an all-reduce where each GPU reads the others'
// partial gradients (the paper's motivating communication pattern for
// multi-GPU training). This example shows the convergence curve coming out
// of the *functional* simulation and how much of the fabric time
// compression buys back on float-heavy traffic.
#include <cstdio>

#include "core/system.h"
#include "workloads/gradient_descent.h"

int main(int argc, char** argv) {
  using namespace mgcomp;
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;

  GradientDescentWorkload::Params params;
  params.n = static_cast<std::uint32_t>(params.n * (scale > 0 ? scale : 1.0)) / 128 * 128;
  if (params.n < 512) params.n = 512;

  std::printf("Mini-batch gradient descent: %u samples x %u features, %u iterations, "
              "4 GPUs\n\n", params.n, params.d, params.iterations);

  // Baseline.
  GradientDescentWorkload base_wl(params);
  SystemConfig base_cfg;
  const RunResult base = run_workload(std::move(base_cfg), base_wl);

  // Adaptive compression.
  GradientDescentWorkload ad_wl(params);
  SystemConfig ad_cfg;
  ad_cfg.policy = make_adaptive_policy(AdaptiveParams{.lambda = 6.0});
  const RunResult ad = run_workload(std::move(ad_cfg), ad_wl);

  std::printf("convergence (loss per iteration, functional result):\n");
  for (std::size_t i = 0; i < base_wl.losses().size(); ++i) {
    std::printf("  iter %2zu  loss %10.6f\n", i, base_wl.losses()[i]);
  }

  std::printf("\n%-24s %16s %16s\n", "", "no compression", "adaptive l=6");
  std::printf("%-24s %16llu %16llu\n", "execution (cycles)",
              static_cast<unsigned long long>(base.exec_ticks),
              static_cast<unsigned long long>(ad.exec_ticks));
  std::printf("%-24s %16llu %16llu\n", "inter-GPU traffic (B)",
              static_cast<unsigned long long>(base.inter_gpu_traffic_bytes()),
              static_cast<unsigned long long>(ad.inter_gpu_traffic_bytes()));
  std::printf("%-24s %16llu %16llu\n", "remote reads",
              static_cast<unsigned long long>(base.remote_reads()),
              static_cast<unsigned long long>(ad.remote_reads()));
  std::printf("%-24s %16.2f %16.2f\n", "link energy (uJ)",
              base.total_link_energy_pj() / 1e6, ad.total_link_energy_pj() / 1e6);
  std::printf("\nFloat gradient/feature payloads compress only mildly (Table V's GD row),\n"
              "so the win here is modest — exactly the paper's point that the benefit\n"
              "is workload-dependent, which is why the scheme adapts per phase.\n");
  return 0;
}
