// Example: bringing your own workload to the simulator.
//
// Implements a small stencil workload (1D 3-point Jacobi relaxation)
// directly against the Workload interface — the pattern to copy when
// adding new benchmarks: real data in setup(), real computation plus a
// line-granularity access trace in generate_kernel(), and a functional
// check in verify().
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/system.h"
#include "workloads/emit.h"

namespace {

using namespace mgcomp;

/// x'[i] = (x[i-1] + 2*x[i] + x[i+1]) / 4 over int32, double-buffered,
/// a fixed number of sweeps. Each sweep is one kernel launch.
class JacobiWorkload final : public Workload {
 public:
  JacobiWorkload(std::uint32_t n, std::uint32_t sweeps) : n_(n), sweeps_(sweeps) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "1D Jacobi"; }
  [[nodiscard]] std::string_view abbrev() const noexcept override { return "JAC"; }

  void setup(GlobalMemory& mem) override {
    a_ = mem.alloc(static_cast<std::size_t>(n_) * 4, "JAC.a");
    b_ = mem.alloc(static_cast<std::size_t>(n_) * 4, "JAC.b");
    params_ = mem.alloc(sweeps_ * kLineBytes, "JAC.params");
    Rng rng(0x1ac0b1);
    for (std::uint32_t i = 0; i < n_; ++i) {
      // A narrow hot spot in a cold field; diffusion must flatten it.
      const std::int32_t v = (i > n_ / 2 - 3 && i < n_ / 2 + 3)
                                 ? 1 << 20
                                 : static_cast<std::int32_t>(rng.below(16));
      mem.store<std::int32_t>(a_ + static_cast<Addr>(i) * 4, v);
    }
  }

  [[nodiscard]] std::size_t kernel_count() const override { return sweeps_; }

  KernelTrace generate_kernel(std::size_t k, GlobalMemory& mem) override {
    const Addr src = (k % 2 == 0) ? a_ : b_;
    const Addr dst = (k % 2 == 0) ? b_ : a_;

    KernelTrace trace;
    trace.name = "jacobi.sweep" + std::to_string(k);
    trace.compute_cycles_per_op = 1;
    trace.param_addr = write_param_line(mem, params_, k, {src, dst, n_});

    constexpr std::uint32_t kPointsPerWg = 256;
    for (std::uint32_t base = 0; base < n_; base += kPointsPerWg) {
      WorkgroupTrace wg;
      // Input window including the +/-1 halo.
      const std::uint32_t lo = base == 0 ? 0 : base - 1;
      const std::uint32_t hi = std::min(base + kPointsPerWg + 1, n_);
      for (std::uint32_t i = lo; i < hi; i += kLineBytes / 4) {
        emit_read(wg, src + static_cast<Addr>(i) * 4);
      }
      // Functional sweep + output lines.
      for (std::uint32_t i = base; i < std::min(base + kPointsPerWg, n_); ++i) {
        const auto left =
            i == 0 ? 0 : mem.load<std::int32_t>(src + static_cast<Addr>(i - 1) * 4);
        const auto mid = mem.load<std::int32_t>(src + static_cast<Addr>(i) * 4);
        const auto right =
            i + 1 == n_ ? 0 : mem.load<std::int32_t>(src + static_cast<Addr>(i + 1) * 4);
        mem.store<std::int32_t>(dst + static_cast<Addr>(i) * 4,
                                (left + 2 * mid + right) / 4);
        if (i % (kLineBytes / 4) == 0) emit_write(wg, dst + static_cast<Addr>(i) * 4);
      }
      trace.workgroups.push_back(std::move(wg));
    }
    return trace;
  }

  [[nodiscard]] bool verify(const GlobalMemory& mem) const override {
    // Diffusion conserves the field's rough total and flattens the peak.
    const Addr final_buf = (sweeps_ % 2 == 0) ? a_ : b_;
    std::int64_t peak = 0;
    for (std::uint32_t i = 0; i < n_; ++i) {
      peak = std::max<std::int64_t>(
          peak, mem.load<std::int32_t>(final_buf + static_cast<Addr>(i) * 4));
    }
    return peak > 0 && peak < (1 << 20);  // flattened but not vanished
  }

 private:
  std::uint32_t n_;
  std::uint32_t sweeps_;
  Addr a_{0}, b_{0}, params_{0};
};

}  // namespace

int main() {
  std::printf("Custom workload demo: 1D Jacobi stencil on the 4-GPU system\n\n");

  JacobiWorkload base_wl(256 * 1024, 6);
  SystemConfig base_cfg;
  const RunResult base = run_workload(std::move(base_cfg), base_wl);

  JacobiWorkload ad_wl(256 * 1024, 6);
  SystemConfig ad_cfg;
  ad_cfg.policy = make_adaptive_policy(AdaptiveParams{.lambda = 6.0});
  const RunResult ad = run_workload(std::move(ad_cfg), ad_wl);

  std::printf("%-26s %14s %14s\n", "", "baseline", "adaptive l=6");
  std::printf("%-26s %14llu %14llu\n", "execution (cycles)",
              static_cast<unsigned long long>(base.exec_ticks),
              static_cast<unsigned long long>(ad.exec_ticks));
  std::printf("%-26s %14llu %14llu\n", "inter-GPU traffic (B)",
              static_cast<unsigned long long>(base.inter_gpu_traffic_bytes()),
              static_cast<unsigned long long>(ad.inter_gpu_traffic_bytes()));
  std::printf("\nA smooth stencil field is BDI's best case: the halo exchanges between\n"
              "GPUs compress to the base+delta form, and the adaptive scheme finds\n"
              "that without being told.\n");
  return 0;
}
