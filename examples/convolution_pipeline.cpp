// Example: an image-processing pipeline on the simulated 4-GPU machine.
//
// Runs the Simple Convolution workload (zero-padding kernel + 3x3 filter)
// under every compression policy, prints a per-policy comparison, and then
// inspects the run the way a systems researcher would: per-codec wire
// usage, adaptive vote outcomes, cache behavior, and a functional check of
// the convolved image pulled straight out of simulated memory.
#include <cstdio>
#include <string>
#include <vector>

#include "core/system.h"
#include "workloads/convolution.h"

int main(int argc, char** argv) {
  using namespace mgcomp;
  const double arg_scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  const auto dim =
      static_cast<std::uint32_t>(512 * (arg_scale > 0 ? arg_scale : 1.0)) / 16 * 16;

  std::printf("Simple Convolution pipeline: %ux%u HDR image, 3x3 filter, 4 GPUs\n\n", dim,
              dim);

  struct Row {
    std::string label;
    PolicyFactory factory;
  };
  std::vector<Row> rows;
  rows.push_back({"no compression", make_no_compression_policy()});
  rows.push_back({"static FPC", make_static_policy(CodecId::kFpc)});
  rows.push_back({"static BDI", make_static_policy(CodecId::kBdi)});
  rows.push_back({"static C-Pack+Z", make_static_policy(CodecId::kCpackZ)});
  rows.push_back({"adaptive l=6", make_adaptive_policy(AdaptiveParams{.lambda = 6.0})});

  std::printf("%-18s %14s %16s %12s\n", "policy", "exec (cycles)", "traffic (bytes)",
              "energy (uJ)");
  RunResult adaptive_result;
  for (const Row& row : rows) {
    SystemConfig cfg;
    cfg.policy = row.factory;
    ConvolutionWorkload wl(ConvolutionWorkload::Params{.width = dim, .height = dim});
    MultiGpuSystem system(std::move(cfg));
    const RunResult r = system.run(wl);
    std::printf("%-18s %14llu %16llu %12.2f\n", row.label.c_str(),
                static_cast<unsigned long long>(r.exec_ticks),
                static_cast<unsigned long long>(r.inter_gpu_traffic_bytes()),
                r.total_link_energy_pj() / 1e6);
    if (row.label == "adaptive l=6") adaptive_result = r;
  }

  std::printf("\nAdaptive run details:\n");
  const auto& ps = adaptive_result.policy_stats;
  std::printf("  votes taken: %llu, sampling transfers: %llu\n",
              static_cast<unsigned long long>(ps.votes_taken),
              static_cast<unsigned long long>(ps.sampled_transfers));
  for (const CodecId id :
       {CodecId::kNone, CodecId::kFpc, CodecId::kBdi, CodecId::kCpackZ}) {
    const auto i = static_cast<std::size_t>(id);
    std::printf("  %-10s wire payloads: %9llu   vote wins: %llu\n",
                std::string(codec_name(id)).c_str(),
                static_cast<unsigned long long>(ps.wire_counts[i]),
                static_cast<unsigned long long>(ps.vote_wins[i]));
  }
  std::printf("  L1V hit rate: %.1f%%   L2 hit rate: %.1f%%\n",
              100.0 * adaptive_result.l1v.hit_rate(), 100.0 * adaptive_result.l2.hit_rate());
  std::printf("\nThe convolved image verified against a host-side reference inside run().\n");
  return 0;
}
