// Example: interactive-style codec explorer.
//
// Builds a gallery of characteristic cache lines (the data-pattern classes
// of Section III-A), compresses each with all three codecs and the
// bit-plane pre-coding layer, and prints encoded sizes plus the Eq. (1)
// penalty at several lambda values — a hands-on view of why no single
// codec wins everywhere and what the adaptive selector actually computes.
#include <cstdio>
#include <string>
#include <vector>

#include "adaptive/penalty.h"
#include "common/entropy.h"
#include "common/rng.h"
#include "common/word_io.h"
#include "compression/bitplane.h"
#include "compression/codec_set.h"
#include "fabric/message.h"
#include "fault/fault_injector.h"

namespace {

using namespace mgcomp;

struct Sample {
  std::string label;
  Line line;
};

std::vector<Sample> make_gallery() {
  std::vector<Sample> gallery;
  Rng rng(0xE0);

  gallery.push_back({"all zeros", zero_line()});

  Line repeated{};
  for (std::size_t w = 0; w < 8; ++w)
    store_le<std::uint64_t>(repeated, w * 8, 0x1111222233334444ULL);
  gallery.push_back({"repeated 64-bit word", repeated});

  Line narrow{};
  for (std::size_t w = 0; w < 16; ++w) {
    store_le<std::uint32_t>(narrow, w * 4,
                            static_cast<std::uint32_t>(static_cast<std::int32_t>(
                                rng.below(200)) - 100));
  }
  gallery.push_back({"narrow words (+/-100)", narrow});

  Line pointers{};
  for (std::size_t w = 0; w < 8; ++w) {
    store_le<std::uint64_t>(pointers, w * 8, 0x7f80'4000'0000ULL + w * 64);
  }
  gallery.push_back({"array of pointers", pointers});

  Line pixels{};
  for (std::size_t w = 0; w < 16; ++w) {
    store_le<std::uint32_t>(pixels, w * 4,
                            131072 + static_cast<std::uint32_t>(w) * 5 +
                                static_cast<std::uint32_t>(rng.below(3)));
  }
  gallery.push_back({"smooth HDR pixels", pixels});

  Line text{};
  const char* words = "the quick brown fox jumps over the lazy dog abcdefghijklmno";
  for (std::size_t i = 0; i < kLineBytes; ++i)
    text[i] = static_cast<std::uint8_t>(words[i % 60]);
  gallery.push_back({"ASCII text", text});

  Line mixed{};
  for (std::size_t w = 0; w < 16; ++w) {
    if (w % 4 == 0) {
      store_le<std::uint32_t>(mixed, w * 4, static_cast<std::uint32_t>(rng.next()));
    } else if (w % 4 == 1) {
      store_le<std::uint32_t>(mixed, w * 4, static_cast<std::uint32_t>(rng.below(32)));
    }
  }
  gallery.push_back({"mixed zero/small/wide", mixed});

  Line random_bytes;
  for (auto& b : random_bytes) b = static_cast<std::uint8_t>(rng.next());
  gallery.push_back({"random (ciphertext)", random_bytes});

  return gallery;
}

}  // namespace

int main() {
  CodecSet set;
  const std::vector<const Codec*> codecs = set.real_codecs();

  std::printf("Codec explorer: encoded bits per 512-bit line\n\n");
  std::printf("%-24s %8s | %6s %6s %8s | %10s\n", "line content", "entropy", "FPC", "BDI",
              "C-Pack+Z", "BPC+C-Pack");
  for (const Sample& s : make_gallery()) {
    std::printf("%-24s %8.2f |", s.label.c_str(), byte_entropy_normalized(s.line));
    for (const Codec* c : codecs) {
      const Compressed comp = c->compress(s.line);
      std::printf(" %*u", c->id() == CodecId::kCpackZ ? 8 : 6, comp.size_bits);
      // Every encoding must reconstruct the exact line.
      if (c->decompress(comp) != s.line) {
        std::printf("  <-- ROUND-TRIP FAILURE\n");
        return 1;
      }
    }
    const BitplaneCodec bpc(set.get(CodecId::kCpackZ));
    std::printf(" | %10u\n", bpc.compress(s.line).size_bits);
  }

  std::printf("\nEq. (1) penalties P = N + lambda*(Lc+Ld) for the 'smooth HDR pixels' "
              "line:\n");
  std::printf("%8s %10s %10s %10s %10s  -> winner\n", "lambda", "raw", "FPC", "BDI",
              "C-Pack+Z");
  const Line pixels = make_gallery()[4].line;
  for (const double lambda : {0.0, 6.0, 32.0}) {
    const PenaltyFunction p(lambda);
    double best = p(kLineBits, CodecId::kNone);
    std::string winner = "raw";
    std::printf("%8.0f %10.0f", lambda, best);
    for (const Codec* c : codecs) {
      const Compressed comp = c->compress(pixels);
      const double pen = p(comp.size_bits, c->id());
      std::printf(" %10.0f", pen);
      if (comp.is_compressed() && pen < best) {
        best = pen;
        winner = std::string(c->name());
      }
    }
    std::printf("  -> %s\n", winner.c_str());
  }
  std::printf("\n(Lower penalty wins; lambda trades bandwidth for codec speed.)\n");

  // --- Link reliability: CRC detection + fault-injector statistics -------
  std::printf("\nUnreliable link: CRC-32 end-to-end detection\n");
  Message msg;
  msg.type = MsgType::kDataReady;
  msg.id = 0x0042;
  msg.src = EndpointId{0};
  msg.dst = EndpointId{1};
  msg.payload_bits = kLineBits;
  msg.data = make_gallery()[4].line;  // the HDR pixels again
  msg.crc = message_crc(msg);
  std::printf("  clean message: crc=0x%08X, recomputed=0x%08X (match)\n", msg.crc,
              message_crc(msg));
  Message hit = msg;
  FaultInjector::corrupt(hit, /*bit=*/300);  // payload bit flip
  std::printf("  after 1-bit payload flip: stamped=0x%08X, recomputed=0x%08X -> NACK\n",
              hit.crc, message_crc(hit));

  std::printf("\n  fault injector at BER=1e-6, drop=0.1%%, dup=0.1%% over 100k "
              "Data-Ready messages:\n");
  FaultParams fp;
  fp.bit_error_rate = 1e-6;
  fp.drop_rate = 1e-3;
  fp.duplicate_rate = 1e-3;
  FaultInjector injector(fp);
  for (int i = 0; i < 100000; ++i) (void)injector.on_transmit(msg);
  const FaultStats& fs = injector.stats();
  std::printf("  bit errors: %llu (header %llu / payload %llu), drops: %llu, "
              "duplicates: %llu\n",
              static_cast<unsigned long long>(fs.bit_errors),
              static_cast<unsigned long long>(fs.header_errors),
              static_cast<unsigned long long>(fs.payload_errors),
              static_cast<unsigned long long>(fs.drops),
              static_cast<unsigned long long>(fs.duplicates));
  std::printf("  (every corrupted or dropped message is recovered by the NACK/timeout\n"
              "   retransmission protocol; see docs/architecture.md, Fault model)\n");
  return 0;
}
