// Quickstart: run one workload on the 4-GPU system, with and without
// adaptive inter-GPU compression, and print the headline numbers.
//
//   $ ./quickstart [scale]
//
// This is the 20-line version of what the bench_* binaries do per
// table/figure.
#include <cstdio>
#include <cstdlib>

#include "core/system.h"
#include "workloads/all_workloads.h"

int main(int argc, char** argv) {
  using namespace mgcomp;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.25;

  std::printf("mgcomp quickstart: Bitonic Sort on 4 simulated GPUs (scale %.2f)\n\n", scale);

  // Baseline: no compression.
  SystemConfig base_cfg;
  auto wl = make_workload("BS", scale);
  const RunResult base = run_workload(std::move(base_cfg), *wl);

  // Adaptive compression, the paper's lambda = 6 operating point.
  SystemConfig adaptive_cfg;
  adaptive_cfg.policy = make_adaptive_policy(AdaptiveParams{.lambda = 6.0});
  wl = make_workload("BS", scale);
  const RunResult adaptive = run_workload(std::move(adaptive_cfg), *wl);

  std::printf("%-28s %15s %15s\n", "", "no compression", "adaptive l=6");
  std::printf("%-28s %15llu %15llu\n", "execution time (cycles)",
              static_cast<unsigned long long>(base.exec_ticks),
              static_cast<unsigned long long>(adaptive.exec_ticks));
  std::printf("%-28s %15llu %15llu\n", "inter-GPU traffic (bytes)",
              static_cast<unsigned long long>(base.inter_gpu_traffic_bytes()),
              static_cast<unsigned long long>(adaptive.inter_gpu_traffic_bytes()));
  std::printf("%-28s %15.2f %15.2f\n", "link energy (uJ)", base.total_link_energy_pj() / 1e6,
              adaptive.total_link_energy_pj() / 1e6);

  std::printf("\nspeedup            : %.2fx\n",
              static_cast<double>(base.exec_ticks) / static_cast<double>(adaptive.exec_ticks));
  std::printf("traffic reduction  : %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(adaptive.inter_gpu_traffic_bytes()) /
                                 static_cast<double>(base.inter_gpu_traffic_bytes())));
  std::printf("energy reduction   : %.1f%%\n",
              100.0 * (1.0 - adaptive.total_link_energy_pj() / base.total_link_energy_pj()));
  return 0;
}
