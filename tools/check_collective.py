#!/usr/bin/env python3
"""Schema and property check for BENCH_COLLECTIVE.json from `bench_collective`.

Validates the mgcomp-bench-collective-v1 schema: header fields, one row
per collective x policy x fill x rank-count with verified results, sane
bandwidth numbers, and the correct NCCL-style bus factor per collective.
Beyond shape, it asserts the physics the benchmark exists to show:

  * every row is verified (the collective produced the reference result);
  * for each (collective, fill, ranks), the data digest is identical
    across policies — link compression must never change the math;
  * on the compressible (lowrange) fill, the adaptive policy spends
    strictly fewer fabric busy cycles than raw on the all-reduce rows
    (the paper's headline effect, transplanted to collectives);
  * on the incompressible (random) fill, adaptive's wire bits stay within
    a few percent of raw (the fallback works);
  * the bulk fast path (lines_per_block > 1) issues block transfers,
    reproduces the per-line digests bit-exactly, and its best block size
    meets or beats per-line algorithm bandwidth for the same policy.

Usage: check_collective.py BENCH_COLLECTIVE.json
"""

import json
import sys

EXPECTED_COLLECTIVES = {"allreduce", "allgather", "reducescatter", "broadcast"}
EXPECTED_POLICIES = {"raw", "BDI", "adaptive"}
RESULT_FIELDS = {
    "collective": str,
    "policy": str,
    "fill": str,
    "ranks": int,
    "lines_per_block": int,
    "block_transfers": int,
    "bytes_per_rank": int,
    "verified": bool,
    "duration_cycles": int,
    "busy_cycles": int,
    "alg_bytes_per_cycle": float,
    "bus_bytes_per_cycle": float,
    "payload_raw_bits": int,
    "payload_wire_bits": int,
    "data_digest": str,
    "fingerprint": str,
}


def fail(msg: str) -> None:
    print(f"check_collective: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def bus_factor(collective: str, ranks: int) -> float:
    if collective == "allreduce":
        return 2.0 * (ranks - 1) / ranks
    if collective in ("allgather", "reducescatter"):
        return (ranks - 1) / ranks
    return 1.0  # broadcast


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_collective.py BENCH_COLLECTIVE.json")
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {sys.argv[1]}: {e}")

    if doc.get("schema") != "mgcomp-bench-collective-v1":
        fail(f"unexpected schema {doc.get('schema')!r}")
    if not isinstance(doc.get("scale"), (int, float)) or doc["scale"] <= 0:
        fail(f"bad scale {doc.get('scale')!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail("missing or empty results array")

    seen = {}
    for i, row in enumerate(results):
        if not isinstance(row, dict):
            fail(f"result {i}: not an object")
        for field, kind in RESULT_FIELDS.items():
            v = row.get(field)
            ok = isinstance(v, (int, float)) if kind is float else isinstance(v, kind)
            # bool is an int subclass; keep int fields strictly integral.
            if kind is int and isinstance(v, bool):
                ok = False
            if not ok:
                fail(f"result {i}: bad {field} {v!r}")
        if row["collective"] not in EXPECTED_COLLECTIVES:
            fail(f"result {i}: unknown collective {row['collective']!r}")
        if row["policy"] not in EXPECTED_POLICIES:
            fail(f"result {i}: unknown policy {row['policy']!r}")
        if not row["verified"]:
            fail(f"result {i}: unverified collective result")
        if row["duration_cycles"] <= 0 or row["busy_cycles"] <= 0:
            fail(f"result {i}: non-positive cycle counts")
        if row["payload_wire_bits"] > row["payload_raw_bits"]:
            fail(f"result {i}: wire bits exceed raw bits")
        if row["alg_bytes_per_cycle"] <= 0:
            fail(f"result {i}: non-positive algorithm bandwidth")
        want = bus_factor(row["collective"], row["ranks"]) * row["alg_bytes_per_cycle"]
        if abs(row["bus_bytes_per_cycle"] - want) > max(1e-3, want * 1e-2):
            fail(f"result {i}: bus bandwidth {row['bus_bytes_per_cycle']} "
                 f"inconsistent with factor x algBW = {want:.4f}")
        if row["lines_per_block"] < 1 or row["lines_per_block"] > 64:
            fail(f"result {i}: lines_per_block {row['lines_per_block']} outside [1, 64]")
        if row["lines_per_block"] == 1 and row["block_transfers"] != 0:
            fail(f"result {i}: per-line row reports {row['block_transfers']} block transfers")
        if row["lines_per_block"] > 1 and row["block_transfers"] == 0:
            fail(f"result {i}: bulk row (lines_per_block "
                 f"{row['lines_per_block']}) issued no block transfers")
        key = (row["collective"], row["policy"], row["fill"], row["ranks"],
               row["lines_per_block"])
        if key in seen:
            fail(f"result {i}: duplicate case {key}")
        seen[key] = row

    # Neither compression nor pull granularity may change the reduced data.
    for (coll, _, fill, ranks, lpb), row in seen.items():
        raw = seen.get((coll, "raw", fill, ranks, 1))
        if raw and row["data_digest"] != raw["data_digest"]:
            fail(f"{coll}/{fill}/{ranks}/lpb={lpb}: digest {row['policy']}="
                 f"{row['data_digest']} != raw={raw['data_digest']}")

    # The headline effect: adaptive compression cuts all-reduce fabric
    # cycles on compressible data.
    checked = 0
    for ranks in sorted({k[3] for k in seen}):
        raw = seen.get(("allreduce", "raw", "lowrange", ranks, 1))
        ad = seen.get(("allreduce", "adaptive", "lowrange", ranks, 1))
        if not raw or not ad:
            continue
        checked += 1
        if ad["busy_cycles"] >= raw["busy_cycles"]:
            fail(f"allreduce/{ranks} ranks: adaptive busy_cycles "
                 f"{ad['busy_cycles']} not below raw {raw['busy_cycles']}")
        print(f"check_collective: OK: allreduce {ranks} ranks: adaptive "
              f"{ad['busy_cycles']} < raw {raw['busy_cycles']} busy cycles "
              f"({ad['busy_cycles'] / raw['busy_cycles']:.2f}x)")
    if checked == 0:
        fail("no (raw, adaptive) lowrange all-reduce pair to compare")

    # Bulk fast path: under the adaptive policy (the one that compresses
    # blocks), the best block size must meet or beat per-line algorithm
    # bandwidth. Raw/static bulk rows document the other side of the
    # tradeoff — uncompressed jumbos serialize store-and-forward and can
    # lose to per-line pipelining — so only their shape is validated.
    bulk_checked = 0
    for (coll, policy, fill, ranks, lpb), row in seen.items():
        if lpb == 1:
            continue
        base = seen.get((coll, policy, fill, ranks, 1))
        if not base:
            fail(f"{coll}/{policy}/{fill}/{ranks}: bulk row lpb={lpb} has no "
                 f"per-line baseline row")
        if policy != "adaptive":
            continue
        best = max(r["alg_bytes_per_cycle"]
                   for (c, p, f2, rk, l), r in seen.items()
                   if (c, p, f2, rk) == (coll, policy, fill, ranks) and l > 1)
        if best < base["alg_bytes_per_cycle"]:
            fail(f"{coll}/{policy}/{fill}/{ranks}: best bulk algBW {best:.3f} "
                 f"below per-line {base['alg_bytes_per_cycle']:.3f}")
        bulk_checked += 1
    if bulk_checked:
        print(f"check_collective: OK: {bulk_checked} adaptive bulk rows, best "
              f"block size beats per-line bandwidth")

    # Incompressible fallback: adaptive within 5% of raw wire bits.
    for (coll, _, fill, ranks, lpb), row in seen.items():
        if fill != "random" or row["policy"] != "adaptive":
            continue
        raw = seen.get((coll, "raw", fill, ranks, lpb))
        if raw and row["payload_wire_bits"] > raw["payload_wire_bits"] * 1.05:
            fail(f"{coll}/random/{ranks}: adaptive wire bits "
                 f"{row['payload_wire_bits']} exceed raw x1.05")

    print(f"check_collective: OK: {len(results)} rows, all verified, digests "
          f"policy-invariant")


if __name__ == "__main__":
    main()
