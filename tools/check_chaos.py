#!/usr/bin/env python3
"""Schema and property check for BENCH_CHAOS.json from `bench_chaos`.

Validates the mgcomp-bench-chaos-v1 schema and the properties the chaos
soak exists to prove:

  * every (collective, policy, rate) cell is present exactly once and
    carries an explicit verdict — the harness terminated everywhere, no
    watchdog dump truncated the sweep;
  * the swept non-zero episode rates span at least three orders of
    magnitude, and the rate-0 control rows are pristine (completed on the
    first attempt, full ring, not partial);
  * verdicts are consistent: completed and degraded rows are verified
    against the host-side reference, failed rows carry a non-"none"
    structured error kind, and only shrunk (partial) rows lose survivors.

Usage: check_chaos.py BENCH_CHAOS.json
"""

import json
import sys

EXPECTED_COLLECTIVES = {"allreduce", "allgather", "reducescatter", "broadcast"}
EXPECTED_POLICIES = {"raw", "adaptive"}
EXPECTED_VERDICTS = {"completed", "degraded", "failed"}
EXPECTED_ERRORS = {"none", "peer_down", "pull_failed", "shrink_rejected",
                   "retries_exhausted"}
RESULT_FIELDS = {
    "collective": str,
    "policy": str,
    "rate": float,
    "episodes": int,
    "verdict": str,
    "error_kind": str,
    "attempts": int,
    "partial": bool,
    "verified": bool,
    "survivors": int,
    "duration_cycles": int,
    "line_transfers": int,
    "hard_failures": int,
    "link_errors_dropped": int,
    "health_transitions": int,
    "probes_sent": int,
    "rerouted": int,
    "episode_drops": int,
    "data_digest": str,
}


def fail(msg: str) -> None:
    print(f"check_chaos: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_chaos.py BENCH_CHAOS.json")
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {sys.argv[1]}: {e}")

    if doc.get("schema") != "mgcomp-bench-chaos-v1":
        fail(f"unexpected schema {doc.get('schema')!r}")
    if not isinstance(doc.get("scale"), (int, float)) or doc["scale"] <= 0:
        fail(f"bad scale {doc.get('scale')!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail("missing or empty results array")

    seen = {}
    for i, row in enumerate(results):
        if not isinstance(row, dict):
            fail(f"result {i}: not an object")
        for field, kind in RESULT_FIELDS.items():
            v = row.get(field)
            ok = isinstance(v, (int, float)) if kind is float else isinstance(v, kind)
            # bool is an int subclass; keep int fields strictly integral.
            if kind is int and isinstance(v, bool):
                ok = False
            if not ok:
                fail(f"result {i}: bad {field} {v!r}")
        if row["collective"] not in EXPECTED_COLLECTIVES:
            fail(f"result {i}: unknown collective {row['collective']!r}")
        if row["policy"] not in EXPECTED_POLICIES:
            fail(f"result {i}: unknown policy {row['policy']!r}")
        if row["verdict"] not in EXPECTED_VERDICTS:
            fail(f"result {i}: unknown verdict {row['verdict']!r}")
        if row["error_kind"] not in EXPECTED_ERRORS:
            fail(f"result {i}: unknown error_kind {row['error_kind']!r}")
        if row["attempts"] < 1:
            fail(f"result {i}: attempts {row['attempts']} < 1")
        key = (row["collective"], row["policy"], row["rate"])
        if key in seen:
            fail(f"result {i}: duplicate cell {key}")
        seen[key] = row

        # Verdict consistency.
        if row["verdict"] in ("completed", "degraded") and not row["verified"]:
            fail(f"result {i}: {row['verdict']} but not verified")
        if row["verdict"] == "failed" and row["error_kind"] == "none":
            fail(f"result {i}: failed without an error kind")
        if row["verdict"] == "completed" and row["attempts"] != 1:
            fail(f"result {i}: completed in {row['attempts']} attempts")
        if row["partial"] != (row["survivors"] < 4) and row["verdict"] != "failed":
            fail(f"result {i}: partial={row['partial']} inconsistent with "
                 f"survivors={row['survivors']}")

        # Rate-0 control rows must be untouched by the fault subsystem.
        if row["rate"] == 0:
            if row["verdict"] != "completed" or row["attempts"] != 1:
                fail(f"result {i}: rate-0 control not pristine")
            if row["partial"] or row["episodes"] != 0:
                fail(f"result {i}: rate-0 control saw episodes")
            if row["health_transitions"] != 0 or row["hard_failures"] != 0:
                fail(f"result {i}: rate-0 control saw fault activity")

    # Full grid: every (collective, policy) cell at every swept rate.
    rates = sorted({k[2] for k in seen})
    colls = sorted({k[0] for k in seen})
    pols = sorted({k[1] for k in seen})
    for c in colls:
        for p in pols:
            for r in rates:
                if (c, p, r) not in seen:
                    fail(f"missing cell ({c}, {p}, {r})")

    nonzero = [r for r in rates if r > 0]
    if 0 not in rates and 0.0 not in rates:
        fail("no rate-0 control rows")
    if len(nonzero) < 2 or max(nonzero) / min(nonzero) < 1000:
        fail(f"episode rates {nonzero} span less than 3 orders of magnitude")

    verdicts = {v: sum(1 for r in seen.values() if r["verdict"] == v)
                for v in EXPECTED_VERDICTS}
    print(f"check_chaos: OK: {len(results)} rows over rates {rates}; verdicts "
          f"completed={verdicts['completed']} degraded={verdicts['degraded']} "
          f"failed={verdicts['failed']}; all cells terminated")


if __name__ == "__main__":
    main()
