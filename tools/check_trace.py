#!/usr/bin/env python3
"""Schema check for the trace files written by `simulate --trace-out`.

Validates the Chrome trace-event dialect the Tracer exporter promises
(docs/architecture.md, "Observability"): well-formed JSON, known event
phases, named tracks, non-negative span durations, and per-track counter
timestamps that never run backwards. Exits non-zero on the first
violation so CI fails loudly.

Usage: check_trace.py TRACE.json
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: check_trace.py TRACE.json")

    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {sys.argv[1]}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("missing or empty traceEvents array")

    named_tracks = set()
    used_tracks = set()
    last_counter_ts: dict[tuple[int, str], float] = {}
    counts = {"M": 0, "X": 0, "i": 0, "C": 0}

    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in counts:
            fail(f"event {i}: unknown phase {ph!r}")
        counts[ph] += 1
        if ev.get("pid") != 0:
            fail(f"event {i}: expected pid 0, got {ev.get('pid')!r}")
        tid = ev.get("tid")
        if not isinstance(tid, int) or tid < 0:
            fail(f"event {i}: bad tid {tid!r}")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            fail(f"event {i}: missing name")

        if ph == "M":
            if ev["name"] != "thread_name":
                fail(f"event {i}: unexpected metadata {ev['name']!r}")
            named_tracks.add(tid)
            continue

        used_tracks.add(tid)
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"event {i}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"event {i}: span with bad dur {dur!r}")
            if not ev.get("cat"):
                fail(f"event {i}: span without category")
        elif ph == "i":
            if ev.get("s") != "t":
                fail(f"event {i}: instant without thread scope")
        elif ph == "C":
            if "value" not in ev.get("args", {}):
                fail(f"event {i}: counter without args.value")
            key = (tid, ev["name"])
            if ts < last_counter_ts.get(key, 0.0):
                fail(f"event {i}: counter {ev['name']!r} ts went backwards")
            last_counter_ts[key] = ts

    unnamed = used_tracks - named_tracks
    if unnamed:
        fail(f"tracks used but never named: {sorted(unnamed)}")
    if counts["X"] == 0:
        fail("trace contains no spans")

    print(
        f"check_trace: OK: {counts['X']} spans, {counts['i']} instants, "
        f"{counts['C']} counter samples across {len(used_tracks)} tracks"
    )


if __name__ == "__main__":
    main()
