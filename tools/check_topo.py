#!/usr/bin/env python3
"""Schema and invariant check for BENCH_TOPO.json written by `bench_topo`.

Validates the mgcomp-bench-topo-v1 schema (docs/architecture.md,
"Hierarchical topologies") and the three claims the topology grid exists
to defend:

  1. Bit identity: the fabric and schedule may change timing only, never
     data. Every row must verify against the host reference, and the
     data digest must be identical across all topologies, schedules and
     policies at the same (ranks, bytes_per_rank) point.
  2. The hierarchical schedule pays on oversubscribed trunks: wherever a
     flat-ring and a hierarchical run share (topology, policy, ranks) on
     trunks with internode_bw_ratio >= 2, the hierarchical schedule must
     move fewer trunk wire bytes — every policy, every graph. The
     time-domain ordering (finish no later, bus bandwidth at least the
     flat ring's) is additionally enforced on the adaptive-policy rows:
     with raw payloads the fat-tree's single up/down link pair per node
     can saturate at large node counts and the fewer-but-jumbo trunk
     crossings lose store-and-forward pipelining, which is exactly the
     bottleneck compression relieves. (At ratio 1 the trunks are as
     fast as the intra-node ports and no ordering is enforced at all —
     the schedule targets oversubscribed fabrics.)
  3. Adaptive compression recovers bandwidth where wire bytes are most
     expensive: on hierarchical-schedule rows with ratio >= 2 and
     default (full-page) trunk blocks, adaptive bus bandwidth must be at
     least --min-adaptive-gain x the raw-policy row (default 1.5; the
     committed grid measures ~2.6-3.0x).

Exits non-zero on the first violation so CI fails loudly.

Usage: check_topo.py BENCH_TOPO.json [--min-adaptive-gain 1.5]
"""

import argparse
import json
import sys

RESULT_FIELDS = {
    "topology": str,
    "policy": str,
    "algo": str,
    "ranks": int,
    "gpus_per_node": int,
    "nodes": int,
    "internode_bw_ratio": int,
    "trunk_lines_per_block": int,
    "bytes_per_rank": int,
    "verified": bool,
    "duration_cycles": int,
    "busy_cycles": int,
    "alg_bytes_per_cycle": float,
    "bus_bytes_per_cycle": float,
    "trunk_messages": int,
    "trunk_wire_bytes": int,
    "trunk_busy_cycles": int,
    "payload_raw_bits": int,
    "payload_wire_bits": int,
    "data_digest": str,
    "fingerprint": str,
}


def fail(msg: str) -> None:
    print(f"check_topo: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_doc(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")
    raise AssertionError("unreachable")


def row_label(row: dict) -> str:
    return (f"{row['topology']}/{row['policy']}/{row['algo']}"
            f"/r{row['ranks']}/tlpb{row['trunk_lines_per_block']}")


def check_row(i: int, row: dict) -> None:
    if not isinstance(row, dict):
        fail(f"result {i}: not an object")
    for field, kind in RESULT_FIELDS.items():
        v = row.get(field)
        if kind is float:
            ok = isinstance(v, (int, float)) and not isinstance(v, bool)
        elif kind is int:
            ok = isinstance(v, int) and not isinstance(v, bool)
        else:
            ok = isinstance(v, kind)
        if not ok:
            fail(f"result {i}: bad {field} {v!r}")
    if row["algo"] not in ("flat", "hier"):
        fail(f"result {i}: unknown algo {row['algo']!r}")
    if row["verified"] is not True:
        fail(f"result {i} ({row_label(row)}): did not verify against the "
             f"host reference")
    for field in ("ranks", "gpus_per_node", "internode_bw_ratio", "nodes",
                  "bytes_per_rank", "duration_cycles", "busy_cycles"):
        if row[field] <= 0:
            fail(f"result {i} ({row_label(row)}): non-positive {field}")
    if row["payload_wire_bits"] > row["payload_raw_bits"]:
        fail(f"result {i} ({row_label(row)}): wire bits exceed raw bits — "
             f"compression expanded the payload past the raw fallback")
    if row["policy"] == "raw" and \
            row["payload_wire_bits"] != row["payload_raw_bits"]:
        fail(f"result {i} ({row_label(row)}): raw policy changed wire bits")
    # Trunk traffic exists exactly on hierarchical fabrics that actually
    # span more than one node. The flat schedule on a hierarchical fabric
    # still crosses trunks (nodes-field is 1 for a single flat ring, so
    # key off the fabric geometry, not the schedule).
    crosses_trunks = row["topology"].startswith("hier-") and \
        row["ranks"] > row["gpus_per_node"]
    if crosses_trunks != (row["trunk_wire_bytes"] > 0):
        fail(f"result {i} ({row_label(row)}): trunk_wire_bytes "
             f"{row['trunk_wire_bytes']} inconsistent with fabric geometry")
    if (row["trunk_wire_bytes"] > 0) != (row["trunk_messages"] > 0):
        fail(f"result {i} ({row_label(row)}): trunk message/byte counters "
             f"disagree")


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Validate BENCH_TOPO.json topology invariants.")
    parser.add_argument("json", help="BENCH_TOPO.json to validate")
    parser.add_argument("--min-adaptive-gain", type=float, default=1.5,
                        help="required adaptive/raw bus-bandwidth ratio on "
                             "oversubscribed hierarchical-schedule rows "
                             "(default 1.5)")
    args = parser.parse_args()
    if args.min_adaptive_gain < 1.0:
        fail(f"--min-adaptive-gain {args.min_adaptive_gain} below 1.0")

    doc = load_doc(args.json)
    if doc.get("schema") != "mgcomp-bench-topo-v1":
        fail(f"unexpected schema {doc.get('schema')!r}")
    if not isinstance(doc.get("scale"), (int, float)) or doc["scale"] <= 0:
        fail(f"bad scale {doc.get('scale')!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail("missing or empty results array")

    seen = {}
    digests = {}
    for i, row in enumerate(results):
        check_row(i, row)
        key = (row["topology"], row["policy"], row["algo"], row["ranks"],
               row["trunk_lines_per_block"])
        if key in seen:
            fail(f"result {i}: duplicate case {key}")
        seen[key] = row
        # Invariant 1: same payload -> same digest, whatever moved it.
        dkey = (row["ranks"], row["bytes_per_rank"])
        if dkey in digests and digests[dkey] != row["data_digest"]:
            fail(f"result {i} ({row_label(row)}): data_digest "
                 f"{row['data_digest']} != {digests[dkey]} for the same "
                 f"{dkey[0]}-rank payload — the topology changed the bits")
        digests.setdefault(dkey, row["data_digest"])

    # Invariant 2: hierarchical schedule vs flat ring on the same
    # oversubscribed fabric, at the default (full-page) trunk blocks.
    hier_vs_flat = 0
    for key, hrow in seen.items():
        topology, policy, algo, ranks, tlpb = key
        if algo != "hier" or hrow["internode_bw_ratio"] < 2:
            continue
        frow = seen.get((topology, policy, "flat", ranks, 0))
        if frow is None:
            fail(f"{row_label(hrow)}: no flat-ring baseline row on the same "
                 f"fabric")
        if hrow["trunk_wire_bytes"] >= frow["trunk_wire_bytes"]:
            fail(f"{row_label(hrow)}: trunk_wire_bytes "
                 f"{hrow['trunk_wire_bytes']} not below flat ring's "
                 f"{frow['trunk_wire_bytes']} — leader exchange should "
                 f"cross each trunk once")
        # Per-level ablation rows (non-default trunk blocks) and raw-policy
        # rows only need the byte win: raw jumbo exchanges can saturate a
        # fat-tree's single per-node trunk pair at large node counts, and
        # relieving that is compression's job, not the schedule's.
        if tlpb != 64 or policy != "adaptive":
            continue
        if hrow["duration_cycles"] > frow["duration_cycles"]:
            fail(f"{row_label(hrow)}: duration {hrow['duration_cycles']} "
                 f"exceeds flat ring's {frow['duration_cycles']} on a "
                 f"{hrow['internode_bw_ratio']}:1 oversubscribed trunk")
        if hrow["bus_bytes_per_cycle"] < frow["bus_bytes_per_cycle"]:
            fail(f"{row_label(hrow)}: bus bandwidth "
                 f"{hrow['bus_bytes_per_cycle']} below flat ring's "
                 f"{frow['bus_bytes_per_cycle']}")
        hier_vs_flat += 1
        print(f"check_topo: OK: {topology}/{policy}/r{ranks}: hier "
              f"{hrow['bus_bytes_per_cycle']:.2f} B/cyc >= flat "
              f"{frow['bus_bytes_per_cycle']:.2f}, trunk bytes "
              f"{hrow['trunk_wire_bytes']} < {frow['trunk_wire_bytes']}")
    if hier_vs_flat == 0:
        fail("no hier-vs-flat pair on an oversubscribed (ratio >= 2) fabric")

    # Invariant 3: adaptive compression recovers >= min-adaptive-gain x the
    # raw bus bandwidth on oversubscribed hierarchical-schedule rows with
    # default trunk blocks — the configuration the paper extension targets.
    gains = 0
    for key, arow in seen.items():
        topology, policy, algo, ranks, tlpb = key
        if policy != "adaptive" or algo != "hier" or tlpb != 64 or \
                arow["internode_bw_ratio"] < 2:
            continue
        rrow = seen.get((topology, "raw", algo, ranks, tlpb))
        if rrow is None:
            fail(f"{row_label(arow)}: no raw-policy row to compare against")
        gain = arow["bus_bytes_per_cycle"] / rrow["bus_bytes_per_cycle"]
        if gain < args.min_adaptive_gain:
            fail(f"{row_label(arow)}: adaptive bus bandwidth only "
                 f"{gain:.2f}x raw (< {args.min_adaptive_gain}x) on a "
                 f"{arow['internode_bw_ratio']}:1 trunk")
        gains += 1
        print(f"check_topo: OK: {topology}/r{ranks}: adaptive {gain:.2f}x "
              f"raw bus bandwidth (floor {args.min_adaptive_gain}x)")
    if gains == 0:
        fail("no adaptive-vs-raw hierarchical pair on an oversubscribed "
             "fabric")

    ranks_seen = sorted({r for (_, _, _, r, _) in seen})
    print(f"check_topo: OK: {len(results)} rows, ranks {ranks_seen}, "
          f"{len(digests)} digest group(s), {hier_vs_flat} hier-vs-flat and "
          f"{gains} adaptive-gain comparisons")


if __name__ == "__main__":
    main()
