#!/usr/bin/env python3
"""Mechanical formatting checks for environments without clang-format.

CI's format job runs the real `clang-format --dry-run -Werror` against the
committed .clang-format. This script enforces the subset of that style that
needs no toolchain: the 96-column limit, no hard tabs, no trailing
whitespace, and a final newline, over every C/C++ source under the listed
roots. It exists so local builders (and the tier-1 test path) can catch the
common violations without the clang tooling installed.

Usage: check_format.py [root ...]     (defaults: src tests bench examples)
"""

import os
import sys

COLUMN_LIMIT = 96
EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")
DEFAULT_ROOTS = ("src", "tests", "bench", "examples")


def check_file(path: str) -> list[str]:
    problems = []
    try:
        with open(path, encoding="utf-8") as f:
            data = f.read()
    except (OSError, UnicodeDecodeError) as e:
        return [f"{path}: unreadable: {e}"]
    if data and not data.endswith("\n"):
        problems.append(f"{path}: missing final newline")
    for lineno, line in enumerate(data.splitlines(), start=1):
        if "\t" in line:
            problems.append(f"{path}:{lineno}: hard tab")
        if line != line.rstrip():
            problems.append(f"{path}:{lineno}: trailing whitespace")
        if len(line) > COLUMN_LIMIT:
            problems.append(f"{path}:{lineno}: line is {len(line)} columns "
                            f"(limit {COLUMN_LIMIT})")
    return problems


def main() -> None:
    roots = sys.argv[1:] or [r for r in DEFAULT_ROOTS if os.path.isdir(r)]
    files = []
    for root in roots:
        if os.path.isfile(root):
            files.append(root)
            continue
        for dirpath, _, names in os.walk(root):
            files.extend(os.path.join(dirpath, n) for n in sorted(names)
                         if n.endswith(EXTENSIONS))
    if not files:
        print("check_format: FAIL: no source files found", file=sys.stderr)
        sys.exit(1)

    problems = []
    for path in sorted(files):
        problems.extend(check_file(path))
    if problems:
        for p in problems:
            print(p, file=sys.stderr)
        print(f"check_format: FAIL: {len(problems)} problem(s) in "
              f"{len(files)} files", file=sys.stderr)
        sys.exit(1)
    print(f"check_format: OK: {len(files)} files clean")


if __name__ == "__main__":
    main()
