#!/usr/bin/env python3
"""Schema and regression check for BENCH_PERF.json written by `bench_perf`.

Validates the mgcomp-bench-perf-v1 schema (docs/architecture.md,
"Performance"): header fields, one result row per workload x policy with
positive wall time and event counts, derived rates consistent with the
raw numbers, and aggregate totals that match the sum of the rows. Exits
non-zero on the first violation so CI fails loudly.

With --baseline, additionally compares the run's total and adaptive
events_per_sec against an older BENCH_PERF.json and fails when either
regressed by more than --tolerance (a fraction: 0.5 = new must reach at
least half the baseline rate). CI compares against the committed
baseline, which was recorded on different hardware, so its tolerance is
deliberately loose — the check is a guard against catastrophic
regressions (an accidentally quadratic hot path), not a benchmark.

Usage: check_perf.py BENCH_PERF.json [--baseline OLD.json] [--tolerance 0.5]
"""

import argparse
import json
import sys

EXPECTED_POLICIES = {"raw", "FPC", "BDI", "C-Pack+Z", "adaptive"}
RESULT_FIELDS = {
    "workload": str,
    "policy": str,
    "wall_ms": float,
    "events": int,
    "sim_ticks": int,
    "events_per_sec": float,
    "sim_ticks_per_sec": float,
}


def fail(msg: str) -> None:
    print(f"check_perf: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_rate(label: str, rate: float, count: int, wall_ms: float) -> None:
    expected = count / (wall_ms / 1e3)
    # The producer rounds to one decimal; allow generous slack.
    if abs(rate - expected) > max(1.0, expected * 1e-3):
        fail(f"{label}: rate {rate} inconsistent with {count} / {wall_ms} ms")


def load_doc(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")
    raise AssertionError("unreachable")


def aggregate_rate(doc: dict, name: str, path: str) -> float:
    agg = doc.get(name)
    if not isinstance(agg, dict) or \
            not isinstance(agg.get("events_per_sec"), (int, float)):
        fail(f"{path}: missing {name}.events_per_sec")
    return float(agg["events_per_sec"])


def compare_to_baseline(doc: dict, baseline_path: str, tolerance: float) -> None:
    base = load_doc(baseline_path)
    if base.get("schema") != doc.get("schema"):
        fail(f"baseline schema {base.get('schema')!r} != {doc.get('schema')!r}")
    if base.get("scale") != doc.get("scale"):
        print(f"check_perf: WARNING: baseline scale {base.get('scale')!r} != "
              f"{doc.get('scale')!r}; rates are not directly comparable",
              file=sys.stderr)
    names = ["total", "adaptive"]
    # The sharded and switch aggregates are optional (older baselines
    # predate them); compare each only when both files carry it. A sharded
    # rate measured with fewer cores than lanes is an overhead floor, not a
    # parallelism signal, so those compares are skipped on starved builders.
    for name in ("adaptive_sharded", "adaptive_switch", "adaptive_sharded_switch"):
        cur = doc.get(name)
        if not isinstance(base.get(name), dict) or not isinstance(cur, dict):
            continue
        cores = cur.get("cores")
        shards = cur.get("shards")
        if isinstance(cores, int) and isinstance(shards, int) and cores < shards:
            msg = (f"skipping {name} baseline compare — builder has {cores} "
                   f"core(s) for {shards} shard lanes, so the rate measures "
                   f"overhead, not speedup")
            print(f"check_perf: NOTE: {msg}", file=sys.stderr)
            # Surface the skip in the GitHub Actions run summary so a
            # starved builder is visible without digging through logs.
            print(f"::notice title=check_perf baseline compare skipped::{msg}")
            continue
        names.append(name)
    for name in names:
        old = aggregate_rate(base, name, baseline_path)
        new = aggregate_rate(doc, name, "current run")
        floor = old * (1.0 - tolerance)
        ratio = new / old if old > 0 else float("inf")
        line = (f"{name}.events_per_sec: baseline {old:.0f}, "
                f"current {new:.0f} ({ratio:.2f}x), floor {floor:.0f}")
        if new < floor:
            fail(f"regression: {line}")
        print(f"check_perf: OK: {line}")


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Validate BENCH_PERF.json; optionally compare to a baseline.")
    parser.add_argument("json", help="BENCH_PERF.json to validate")
    parser.add_argument("--baseline", metavar="OLD.json",
                        help="older BENCH_PERF.json to compare rates against")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional events_per_sec regression "
                             "vs the baseline (default 0.15)")
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        fail(f"tolerance {args.tolerance} outside [0, 1)")

    doc = load_doc(args.json)

    if doc.get("schema") != "mgcomp-bench-perf-v1":
        fail(f"unexpected schema {doc.get('schema')!r}")
    if not isinstance(doc.get("scale"), (int, float)) or doc["scale"] <= 0:
        fail(f"bad scale {doc.get('scale')!r}")
    if not isinstance(doc.get("repeats"), int) or doc["repeats"] < 1:
        fail(f"bad repeats {doc.get('repeats')!r}")

    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail("missing or empty results array")

    seen = set()
    sum_ms = 0.0
    sum_events = 0
    adaptive_ms = 0.0
    adaptive_events = 0
    for i, row in enumerate(results):
        if not isinstance(row, dict):
            fail(f"result {i}: not an object")
        for field, kind in RESULT_FIELDS.items():
            v = row.get(field)
            if kind is float:
                ok = isinstance(v, (int, float))
            else:
                ok = isinstance(v, kind)
            if not ok:
                fail(f"result {i}: bad {field} {v!r}")
        if row["policy"] not in EXPECTED_POLICIES:
            fail(f"result {i}: unknown policy {row['policy']!r}")
        key = (row["workload"], row["policy"])
        if key in seen:
            fail(f"result {i}: duplicate case {key}")
        seen.add(key)
        if row["wall_ms"] <= 0 or row["events"] <= 0 or row["sim_ticks"] <= 0:
            fail(f"result {i}: non-positive measurement in {key}")
        check_rate(f"result {i} events_per_sec", row["events_per_sec"],
                   row["events"], row["wall_ms"])
        check_rate(f"result {i} sim_ticks_per_sec", row["sim_ticks_per_sec"],
                   row["sim_ticks"], row["wall_ms"])
        sum_ms += row["wall_ms"]
        sum_events += row["events"]
        if row["policy"] == "adaptive":
            adaptive_ms += row["wall_ms"]
            adaptive_events += row["events"]

    workloads = {w for (w, _) in seen}
    policies = {p for (_, p) in seen}
    if len(seen) != len(workloads) * len(policies):
        fail("results grid is not a full workload x policy cross product")
    if "adaptive" not in policies:
        fail("no adaptive rows — the hot-path target configuration is missing")

    for name, want_ms, want_events in (
        ("total", sum_ms, sum_events),
        ("adaptive", adaptive_ms, adaptive_events),
    ):
        agg = doc.get(name)
        if not isinstance(agg, dict):
            fail(f"missing {name} aggregate")
        if agg.get("events") != want_events:
            fail(f"{name}.events {agg.get('events')!r} != sum of rows {want_events}")
        if not isinstance(agg.get("wall_ms"), (int, float)) or \
                abs(agg["wall_ms"] - want_ms) > 0.01 * len(results):
            fail(f"{name}.wall_ms {agg.get('wall_ms')!r} != sum of rows {want_ms:.3f}")
        check_rate(f"{name}.events_per_sec", agg.get("events_per_sec", -1.0),
                   want_events, agg["wall_ms"])

    def check_sharded(name: str, serial_name: str, serial_ms: float,
                      serial_events: int) -> None:
        sharded = doc.get(name)
        if sharded is None:
            return
        if not isinstance(sharded, dict):
            fail(f"{name} is not an object")
        if not isinstance(sharded.get("shards"), int) or sharded["shards"] < 2:
            fail(f"{name}.shards {sharded.get('shards')!r} must be >= 2")
        if not isinstance(sharded.get("cores"), int) or sharded["cores"] < 1:
            fail(f"{name}.cores {sharded.get('cores')!r} must be a positive int")
        if not isinstance(sharded.get("wall_ms"), (int, float)) or sharded["wall_ms"] <= 0:
            fail(f"{name}.wall_ms {sharded.get('wall_ms')!r}")
        # The sharded engine reproduces the serial schedule bit-exactly, so
        # the event count must equal the serial slice on the same fabric.
        if sharded.get("events") != serial_events:
            fail(f"{name}.events {sharded.get('events')!r} != "
                 f"{serial_name} events {serial_events} — sharded run "
                 f"diverged from the serial schedule")
        check_rate(f"{name}.events_per_sec",
                   sharded.get("events_per_sec", -1.0),
                   sharded["events"], sharded["wall_ms"])
        speedup = sharded.get("speedup_vs_serial")
        if not isinstance(speedup, (int, float)) or speedup <= 0:
            fail(f"{name}.speedup_vs_serial {speedup!r}")
        expected_speedup = serial_ms / sharded["wall_ms"]
        if abs(speedup - expected_speedup) > max(0.01, expected_speedup * 1e-2):
            fail(f"{name}.speedup_vs_serial {speedup} inconsistent "
                 f"with wall times ({expected_speedup:.3f})")
        print(f"check_perf: OK: {name} shards={sharded['shards']} "
              f"cores={sharded['cores']} speedup {speedup:.2f}x vs {serial_name}")

    check_sharded("adaptive_sharded", "serial adaptive", adaptive_ms, adaptive_events)

    switch = doc.get("adaptive_switch")
    if switch is not None:
        if not isinstance(switch, dict):
            fail("adaptive_switch is not an object")
        if not isinstance(switch.get("wall_ms"), (int, float)) or switch["wall_ms"] <= 0:
            fail(f"adaptive_switch.wall_ms {switch.get('wall_ms')!r}")
        if not isinstance(switch.get("events"), int) or switch["events"] <= 0:
            fail(f"adaptive_switch.events {switch.get('events')!r}")
        check_rate("adaptive_switch.events_per_sec",
                   switch.get("events_per_sec", -1.0),
                   switch["events"], switch["wall_ms"])
        check_sharded("adaptive_sharded_switch", "serial adaptive_switch",
                      switch["wall_ms"], switch["events"])
    elif doc.get("adaptive_sharded_switch") is not None:
        fail("adaptive_sharded_switch present without its adaptive_switch baseline")

    bulk = doc.get("bulk_collective")
    if bulk is not None:
        if not isinstance(bulk, dict):
            fail("bulk_collective is not an object")
        for field in ("ranks", "lines_per_rank", "lines_per_block"):
            if not isinstance(bulk.get(field), int) or bulk[field] <= 0:
                fail(f"bulk_collective.{field} {bulk.get(field)!r}")
        for field in ("per_line_alg_bytes_per_cycle", "bulk_alg_bytes_per_cycle"):
            if not isinstance(bulk.get(field), (int, float)) or bulk[field] <= 0:
                fail(f"bulk_collective.{field} {bulk.get(field)!r}")
        if bulk.get("verified") is not True:
            fail("bulk_collective: collective runs did not verify")
        speedup = bulk.get("alg_speedup")
        expected = (bulk["bulk_alg_bytes_per_cycle"]
                    / bulk["per_line_alg_bytes_per_cycle"])
        if not isinstance(speedup, (int, float)) or \
                abs(speedup - expected) > max(0.01, expected * 1e-2):
            fail(f"bulk_collective.alg_speedup {speedup!r} inconsistent with "
                 f"bandwidths ({expected:.3f})")
        # The headline claim — bulk >= 3x per-line algorithm bandwidth —
        # holds at page-granularity blocks, which need each ring chunk to
        # span at least a page (64 lines). Smaller CI scales clamp blocks
        # to the chunk size, so there the bar is just "bulk must not lose".
        page_chunks = bulk["lines_per_rank"] >= 64 * bulk["ranks"]
        floor = 3.0 if page_chunks else 1.0
        if speedup < floor:
            fail(f"bulk_collective: alg_speedup {speedup:.2f}x below the "
                 f"{floor:.1f}x floor (lines_per_rank {bulk['lines_per_rank']}, "
                 f"{bulk['ranks']} ranks)")
        print(f"check_perf: OK: bulk_collective {bulk['ranks']} ranks "
              f"lpb={bulk['lines_per_block']}: {speedup:.2f}x per-line alg "
              f"bandwidth (floor {floor:.1f}x)")

    print(f"check_perf: OK: {len(results)} cases over {len(workloads)} workloads x "
          f"{len(policies)} policies, {sum_events} events in {sum_ms:.1f} ms")

    if args.baseline:
        compare_to_baseline(doc, args.baseline, args.tolerance)


if __name__ == "__main__":
    main()
